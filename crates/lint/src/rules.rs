//! The lint rules, each a pure function over a token stream.
//!
//! Every rule has the same shape: given a repo-relative path, the tokens,
//! the `#[cfg(test)]` mask, and the raw source lines, it appends
//! [`Finding`]s. Which rules run on which files is decided by the caller
//! (see the scope tables in `lib.rs`); rules themselves are scope-free so
//! the fixture tests can aim any rule at any snippet.

use crate::lexer::{Tok, TokKind};
use crate::Finding;

/// Rule names, used in findings and in `lint.allow.toml` entries.
pub const RULE_DETERMINISM: &str = "determinism";
/// See [`panic_hygiene`].
pub const RULE_PANIC: &str = "panic-hygiene";
/// See [`cast_hygiene`].
pub const RULE_CAST: &str = "cast-hygiene";
/// See [`float_eq`].
pub const RULE_FLOAT_EQ: &str = "float-eq";
/// See [`simcontext_first`].
pub const RULE_SIMCONTEXT: &str = "simcontext-first";
/// See [`recorded_twins`].
pub const RULE_RECORDED: &str = "recorded-twins";
/// See [`metric_registry`].
pub const RULE_METRIC: &str = "metric-registry";
/// See [`two_tier_hygiene`].
pub const RULE_TWO_TIER: &str = "two-tier-hygiene";
/// See [`crate::semantic::map_iteration_order`].
pub const RULE_MAP_ITER: &str = "map-iteration-order";
/// See [`crate::semantic::unordered_parallel_merge`].
pub const RULE_PAR_MERGE: &str = "unordered-parallel-merge";
/// See [`crate::semantic::float_accumulation`].
pub const RULE_FLOAT_ACC: &str = "float-accumulation";
/// Emitted by the allowlist pass for entries that match nothing.
pub const RULE_STALE_ALLOW: &str = "stale-allow";

/// Stable rule id and documentation anchor for a rule name, surfaced as
/// the `id`/`doc` fields of `--json` findings so CI annotations can link
/// straight to the rationale.
pub fn rule_doc(rule: &str) -> (&'static str, &'static str) {
    match rule {
        RULE_DETERMINISM => ("HL001", "DESIGN.md#rules-and-scopes"),
        RULE_PANIC => ("HL002", "DESIGN.md#rules-and-scopes"),
        RULE_CAST => ("HL003", "DESIGN.md#rules-and-scopes"),
        RULE_FLOAT_EQ => ("HL004", "DESIGN.md#rules-and-scopes"),
        RULE_SIMCONTEXT => ("HL005", "DESIGN.md#rules-and-scopes"),
        RULE_RECORDED => ("HL006", "DESIGN.md#rules-and-scopes"),
        RULE_METRIC => ("HL007", "DESIGN.md#rules-and-scopes"),
        RULE_TWO_TIER => ("HL008", "DESIGN.md#rules-and-scopes"),
        RULE_MAP_ITER => ("HL009", "DESIGN.md#rules-and-scopes"),
        RULE_PAR_MERGE => ("HL010", "DESIGN.md#rules-and-scopes"),
        RULE_FLOAT_ACC => ("HL011", "DESIGN.md#rules-and-scopes"),
        RULE_STALE_ALLOW => ("HL000", "DESIGN.md#the-allowlist-ratchet"),
        _ => (
            "HL999",
            "DESIGN.md#appendix-d-harl-lint-project-specific-static-analysis",
        ),
    }
}

/// Integer types whose `as` casts the cost-model rule flags.
const INT_TYPES: &[&str] = &[
    "u8", "u16", "u32", "u64", "u128", "i8", "i16", "i32", "i64", "i128", "usize", "isize",
];

/// Identifiers that, next to `==`/`!=`, mark a float comparison in the
/// cost-model files. A heuristic: the token scanner has no types, so it
/// recognises the model's known `f64` field/local names;
/// `clippy::float_cmp` on the same modules is the type-aware backstop.
const FLOAT_NAMES: &[&str] = &["cost", "best_cost", "wall_s", "predicted", "residual"];

pub(crate) fn push(
    out: &mut Vec<Finding>,
    rule: &str,
    path: &str,
    line: usize,
    message: String,
    lines: &[&str],
) {
    let snippet = lines
        .get(line.saturating_sub(1))
        .map_or(String::new(), |l| l.trim().to_string());
    out.push(Finding {
        rule: rule.to_string(),
        path: path.to_string(),
        line,
        message,
        snippet,
        allowed: false,
    });
}

/// **determinism** — no wall-clock or ambient entropy in simulated-time
/// code. Flags `Instant`, `SystemTime`, `UNIX_EPOCH`, `std::env::var*`,
/// and `thread_rng`/`from_entropy`. Simulations must depend only on the
/// `Scenario` and the seed; wall-clock metric sites (e.g. `plan_wall_s`)
/// go in `lint.allow.toml` with a justification.
pub fn determinism(
    path: &str,
    toks: &[Tok],
    mask: &[bool],
    lines: &[&str],
    out: &mut Vec<Finding>,
) {
    for (i, t) in toks.iter().enumerate() {
        if mask[i] || t.kind != TokKind::Ident {
            continue;
        }
        match t.text.as_str() {
            "Instant" | "SystemTime" | "UNIX_EPOCH" => push(
                out,
                RULE_DETERMINISM,
                path,
                t.line,
                format!(
                    "wall-clock `{}` in simulated-time code; use simcore::time, or allowlist a \
                     metrics-only site",
                    t.text
                ),
                lines,
            ),
            "thread_rng" | "from_entropy" => push(
                out,
                RULE_DETERMINISM,
                path,
                t.line,
                format!(
                    "ambient entropy `{}`; derive randomness from the scenario seed",
                    t.text
                ),
                lines,
            ),
            "env"
                if toks.get(i + 1).is_some_and(|n| n.text == "::")
                    && toks.get(i + 2).is_some_and(|n| {
                        matches!(n.text.as_str(), "var" | "var_os" | "vars" | "vars_os")
                    }) =>
            {
                push(
                    out,
                    RULE_DETERMINISM,
                    path,
                    t.line,
                    "environment lookup in simulated-time code; thread configuration through \
                     the Scenario instead"
                        .to_string(),
                    lines,
                );
            }
            _ => {}
        }
    }
}

/// **panic-hygiene** — no `.unwrap()`, `.expect(…)`, `panic!`, `todo!`,
/// `unimplemented!`, or `unreachable!` in library code outside
/// `#[cfg(test)]`. `assert!`/`debug_assert!` are fine: stating an
/// invariant is different from silently converting an `Option`/`Result`
/// into a crash.
pub fn panic_hygiene(
    path: &str,
    toks: &[Tok],
    mask: &[bool],
    lines: &[&str],
    out: &mut Vec<Finding>,
) {
    for (i, t) in toks.iter().enumerate() {
        if mask[i] || t.kind != TokKind::Ident {
            continue;
        }
        let next = toks.get(i + 1).map(|n| n.text.as_str());
        match t.text.as_str() {
            "unwrap" | "expect"
                if next == Some("(")
                    && i > 0
                    && toks[i - 1].text == "."
                    && toks[i - 1].kind == TokKind::Punct =>
            {
                push(
                    out,
                    RULE_PANIC,
                    path,
                    t.line,
                    format!(
                        "`.{}()` in library code; return a typed error (LoadError) or restructure \
                         so the failure case cannot exist",
                        t.text
                    ),
                    lines,
                );
            }
            "panic" | "todo" | "unimplemented" | "unreachable" if next == Some("!") => {
                push(
                    out,
                    RULE_PANIC,
                    path,
                    t.line,
                    format!(
                        "`{}!` in library code; only documented-precondition sites may keep it, \
                         via lint.allow.toml",
                        t.text
                    ),
                    lines,
                );
            }
            _ => {}
        }
    }
}

/// **cast-hygiene** — no bare `as <integer type>` in the cost-model files.
/// Integer narrowing/sign casts silently wrap; the model routes every
/// conversion through the audited helpers in `harl::cast` (lossless or
/// explicitly saturating). `as f64` is exempt: byte quantities stay below
/// 2^53, where `f64` is exact.
pub fn cast_hygiene(
    path: &str,
    toks: &[Tok],
    mask: &[bool],
    lines: &[&str],
    out: &mut Vec<Finding>,
) {
    for (i, t) in toks.iter().enumerate() {
        if mask[i] || t.kind != TokKind::Ident || t.text != "as" {
            continue;
        }
        if let Some(target) = toks.get(i + 1) {
            if target.kind == TokKind::Ident && INT_TYPES.contains(&target.text.as_str()) {
                push(
                    out,
                    RULE_CAST,
                    path,
                    t.line,
                    format!(
                        "bare `as {}` in cost-model code; use the audited harl::cast helpers",
                        target.text
                    ),
                    lines,
                );
            }
        }
    }
}

/// **float-eq** — no `==`/`!=` on floats in the cost-model files. Exact
/// float comparison is almost always a bug in numeric code; the one
/// legitimate site (the optimizer's deterministic tie-break) is
/// allowlisted. Detection is lexical: a float literal, or a known `f64`
/// name (`cost`, …), adjacent to the operator.
pub fn float_eq(path: &str, toks: &[Tok], mask: &[bool], lines: &[&str], out: &mut Vec<Finding>) {
    for (i, t) in toks.iter().enumerate() {
        if mask[i] || t.kind != TokKind::Punct || (t.text != "==" && t.text != "!=") {
            continue;
        }
        let prev_floaty = i > 0 && floaty(&toks[i - 1]);
        // Walk the postfix chain on the right (`a.cost`, `x.0.frac`) to its
        // last identifier.
        let right = last_of_postfix_chain(toks, i + 1);
        let next_floaty = right.is_some_and(floaty);
        if prev_floaty || next_floaty {
            push(
                out,
                RULE_FLOAT_EQ,
                path,
                t.line,
                format!(
                    "float `{}` comparison in cost-model code; compare with a tolerance or \
                     restructure (exact tie-breaks need an allowlist entry)",
                    t.text
                ),
                lines,
            );
        }
    }
}

fn floaty(t: &Tok) -> bool {
    t.is_float_literal() || (t.kind == TokKind::Ident && FLOAT_NAMES.contains(&t.text.as_str()))
}

/// Resolve `a`, `a.b.c`, or `a.0.b` starting at `toks[at]` to its final
/// member token, stopping before any call parentheses.
fn last_of_postfix_chain(toks: &[Tok], at: usize) -> Option<&Tok> {
    let first = toks.get(at)?;
    if first.kind != TokKind::Ident && first.kind != TokKind::Num {
        return Some(first);
    }
    let mut last = first;
    let mut j = at + 1;
    while j + 1 < toks.len() && toks[j].text == "." && toks[j].kind == TokKind::Punct {
        let member = &toks[j + 1];
        if member.kind != TokKind::Ident && member.kind != TokKind::Num {
            break;
        }
        last = member;
        j += 2;
    }
    Some(last)
}

/// **simcontext-first** — a `fn` that takes `&SimContext` takes it as the
/// first non-`self` parameter. One calling convention everywhere: the
/// context always leads, mirroring how `optimize_region`, the policies,
/// and the runtime already read.
pub fn simcontext_first(
    path: &str,
    toks: &[Tok],
    mask: &[bool],
    lines: &[&str],
    out: &mut Vec<Finding>,
) {
    let mut i = 0;
    while i < toks.len() {
        if mask[i] || toks[i].kind != TokKind::Ident || toks[i].text != "fn" {
            i += 1;
            continue;
        }
        // `fn` in a pointer type (`fn(usize) -> T`) has no name; skip.
        let Some(name) = toks.get(i + 1) else { break };
        if name.kind != TokKind::Ident {
            i += 1;
            continue;
        }
        let mut j = i + 2;
        // Skip generic parameters, minding fused `>>` from nested generics
        // (`->` and `=>` are fused tokens and never miscount).
        if toks.get(j).is_some_and(|t| t.text == "<") {
            let mut depth = 0i64;
            while j < toks.len() {
                match toks[j].text.as_str() {
                    "<" => depth += 1,
                    ">" => depth -= 1,
                    ">>" => depth -= 2,
                    _ => {}
                }
                j += 1;
                if depth <= 0 {
                    break;
                }
            }
        }
        if toks.get(j).is_none_or(|t| t.text != "(") {
            i += 1;
            continue;
        }
        // Split the parameter list at top-level commas.
        let open = j;
        let close = matching_paren(toks, open);
        let mut params: Vec<(usize, usize)> = Vec::new();
        let mut start = open + 1;
        let mut dp = 0i64;
        for (k, tok) in toks.iter().enumerate().take(close).skip(open + 1) {
            match tok.text.as_str() {
                "(" | "[" | "{" => dp += 1,
                ")" | "]" | "}" => dp -= 1,
                "," if dp == 0 => {
                    params.push((start, k));
                    start = k + 1;
                }
                _ => {}
            }
        }
        if start < close {
            params.push((start, close));
        }
        let mut non_self_idx = 0usize;
        for (lo, hi) in params {
            let slice = &toks[lo..hi];
            if slice.iter().any(|t| t.text == "self") {
                continue;
            }
            if slice.iter().any(|t| t.text == "SimContext") && non_self_idx > 0 {
                push(
                    out,
                    RULE_SIMCONTEXT,
                    path,
                    toks[i].line,
                    format!(
                        "`fn {}` takes &SimContext as parameter {} — the context is always the \
                         first non-self argument",
                        name.text,
                        non_self_idx + 1
                    ),
                    lines,
                );
                break;
            }
            non_self_idx += 1;
        }
        i = close.max(i + 1);
    }
}

fn matching_paren(toks: &[Tok], open: usize) -> usize {
    let mut depth = 0i64;
    for (k, t) in toks.iter().enumerate().skip(open) {
        match t.text.as_str() {
            "(" => depth += 1,
            ")" => {
                depth -= 1;
                if depth == 0 {
                    return k;
                }
            }
            _ => {}
        }
    }
    toks.len().saturating_sub(1)
}

/// `Recorder`/`MemoryRecorder` methods whose first argument is a metric
/// name (write side and read side alike).
const RECORDER_METHODS: &[&str] = &[
    "counter_add",
    "gauge_set",
    "gauge_max",
    "observe",
    "observe_f64",
    "merge_histogram",
    "series_point",
    "counter_value",
    "gauge_value",
    "histogram_snapshot",
    "summary_snapshot",
    "series_points",
];

/// Metric-name namespaces owned by `simcore::registry`.
const METRIC_PREFIXES: &[&str] = &["sim.", "pfs.", "mw.", "harl."];

/// **metric-registry** — metric names handed to `Recorder` methods come
/// from the typed constants in `simcore::registry`, never from quoted
/// literals. Fires on a `"sim.*"` / `"pfs.*"` / `"mw.*"` / `"harl.*"`
/// string literal appearing as the first argument of a Recorder-method
/// call. Literals elsewhere — schema tags like `"harl.bench.sim.v1"`
/// passed to `json!`, doc strings, match arms — are untouched; only the
/// Recorder call boundary is policed. The caller keeps `registry.rs`
/// itself out of scope: that is where the literals are supposed to live.
pub fn metric_registry(
    path: &str,
    toks: &[Tok],
    mask: &[bool],
    lines: &[&str],
    out: &mut Vec<Finding>,
) {
    for (i, t) in toks.iter().enumerate() {
        if mask[i] || t.kind != TokKind::Ident || !RECORDER_METHODS.contains(&t.text.as_str()) {
            continue;
        }
        if toks.get(i + 1).is_none_or(|n| n.text != "(") {
            continue;
        }
        let Some(arg) = toks.get(i + 2) else { continue };
        if arg.kind != TokKind::Str {
            continue;
        }
        let name = arg.text.trim_matches('"');
        if METRIC_PREFIXES.iter().any(|p| name.starts_with(p)) {
            push(
                out,
                RULE_METRIC,
                path,
                arg.line,
                format!(
                    "metric name {} is a quoted literal at a `{}` call; use the typed constant \
                     from simcore::registry (`registry::<METRIC>.name`)",
                    arg.text, t.text
                ),
                lines,
            );
        }
    }
}

/// **recorded-twins** — no identifier ending in `_recorded`. PR 3 folded
/// the `run_*`/`run_*_recorded` twin APIs into context-carrying single
/// entry points; this keeps the twins from creeping back.
pub fn recorded_twins(
    path: &str,
    toks: &[Tok],
    mask: &[bool],
    lines: &[&str],
    out: &mut Vec<Finding>,
) {
    for (i, t) in toks.iter().enumerate() {
        if mask[i] || t.kind != TokKind::Ident || !t.text.ends_with("_recorded") {
            continue;
        }
        push(
            out,
            RULE_RECORDED,
            path,
            t.line,
            format!(
                "`{}` resurrects the *_recorded twin convention; pass a SimContext (with its \
                 recorder) to the one entry point instead",
                t.text
            ),
            lines,
        );
    }
}

/// A parameter slice that is exactly `name: u64` (an optional leading
/// `mut` is ignored). Anything richer — a different type, a pattern, a
/// reference — is not the legacy stripe-width scalar this rule hunts.
fn is_width_param(slice: &[Tok], name: &str) -> bool {
    let toks: Vec<&Tok> = slice.iter().filter(|t| t.text != "mut").collect();
    toks.len() == 3
        && toks[0].kind == TokKind::Ident
        && toks[0].text == name
        && toks[1].text == ":"
        && toks[2].kind == TokKind::Ident
        && toks[2].text == "u64"
}

/// **two-tier-hygiene** — no new `fn` takes the legacy `(h: u64, s: u64)`
/// stripe-width pair as adjacent parameters. PR 8 made per-class width
/// vectors the canonical layout representation; the pair form survives
/// only in the designated `compat.rs` modules (kept out of scope by the
/// caller). Interleaved signatures like `(m: usize, h: u64, n: usize,
/// s: u64)`, closures, and struct fields are untouched: the rule polices
/// exactly the adjacent-pair `fn` convention that used to spread.
pub fn two_tier_hygiene(
    path: &str,
    toks: &[Tok],
    mask: &[bool],
    lines: &[&str],
    out: &mut Vec<Finding>,
) {
    let mut i = 0;
    while i < toks.len() {
        if mask[i] || toks[i].kind != TokKind::Ident || toks[i].text != "fn" {
            i += 1;
            continue;
        }
        // `fn` in a pointer type (`fn(usize) -> T`) has no name; skip.
        let Some(name) = toks.get(i + 1) else { break };
        if name.kind != TokKind::Ident {
            i += 1;
            continue;
        }
        let mut j = i + 2;
        // Skip generic parameters, minding fused `>>` from nested generics
        // (`->` and `=>` are fused tokens and never miscount).
        if toks.get(j).is_some_and(|t| t.text == "<") {
            let mut depth = 0i64;
            while j < toks.len() {
                match toks[j].text.as_str() {
                    "<" => depth += 1,
                    ">" => depth -= 1,
                    ">>" => depth -= 2,
                    _ => {}
                }
                j += 1;
                if depth <= 0 {
                    break;
                }
            }
        }
        if toks.get(j).is_none_or(|t| t.text != "(") {
            i += 1;
            continue;
        }
        // Split the parameter list at top-level commas.
        let open = j;
        let close = matching_paren(toks, open);
        let mut params: Vec<(usize, usize)> = Vec::new();
        let mut start = open + 1;
        let mut dp = 0i64;
        for (k, tok) in toks.iter().enumerate().take(close).skip(open + 1) {
            match tok.text.as_str() {
                "(" | "[" | "{" => dp += 1,
                ")" | "]" | "}" => dp -= 1,
                "," if dp == 0 => {
                    params.push((start, k));
                    start = k + 1;
                }
                _ => {}
            }
        }
        if start < close {
            params.push((start, close));
        }
        for pair in params.windows(2) {
            let (h_lo, h_hi) = pair[0];
            let (s_lo, s_hi) = pair[1];
            if is_width_param(&toks[h_lo..h_hi], "h") && is_width_param(&toks[s_lo..s_hi], "s") {
                push(
                    out,
                    RULE_TWO_TIER,
                    path,
                    toks[i].line,
                    format!(
                        "`fn {}` takes the legacy `(h: u64, s: u64)` stripe-width pair; new code \
                         takes per-class widths (`&[u64]` / `RstEntry::widths`) — the pair form \
                         lives only in the compat modules",
                        name.text
                    ),
                    lines,
                );
                break;
            }
        }
        i = close.max(i + 1);
    }
}
