//! `lint.allow.toml` — the explicit, reviewed escape hatch.
//!
//! Every entry names a rule, a file, a substring of the offending source
//! line, and a human justification. A finding is suppressed only when all
//! three match, so an allowance cannot silently widen to new code; an
//! entry that matches nothing is itself reported (`stale-allow`) so the
//! file can only shrink as violations are fixed.
//!
//! The format is a small TOML subset parsed by hand (the lint crate has no
//! dependencies): `[[allow]]` tables with `key = "value"` pairs and `#`
//! comments.
//!
//! ```toml
//! [[allow]]
//! rule = "determinism"
//! path = "crates/harl/src/optimizer.rs"
//! pattern = "Instant::now"
//! reason = "plan_wall_s measures real planning latency, not simulated time"
//! ```

/// One allowlist entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AllowEntry {
    /// Rule name the entry suppresses (must match a known rule).
    pub rule: String,
    /// Repo-relative path, forward slashes.
    pub path: String,
    /// Substring that must appear on the flagged source line.
    pub pattern: String,
    /// Why this site is legitimate — shown in `--json` output.
    pub reason: String,
    /// 1-based line of the `[[allow]]` header in the allowlist file.
    pub line: usize,
}

/// Parse the allowlist. Returns an error string (with a line number) on
/// malformed input: a broken allowlist must fail the lint run loudly, not
/// silently allow everything or nothing.
pub fn parse(src: &str) -> Result<Vec<AllowEntry>, String> {
    let mut entries: Vec<AllowEntry> = Vec::new();
    let mut current: Option<(usize, [Option<String>; 4])> = None;
    for (idx, raw) in src.lines().enumerate() {
        let lineno = idx + 1;
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        if line == "[[allow]]" {
            finish(&mut current, &mut entries)?;
            current = Some((lineno, [None, None, None, None]));
            continue;
        }
        if line.starts_with('[') {
            return Err(format!(
                "lint.allow.toml:{lineno}: unknown table `{line}` (only [[allow]] is supported)"
            ));
        }
        let Some((key, value)) = line.split_once('=') else {
            return Err(format!(
                "lint.allow.toml:{lineno}: expected `key = \"value\"`"
            ));
        };
        let key = key.trim();
        let value = value.trim();
        let value = value
            .strip_prefix('"')
            .and_then(|v| v.strip_suffix('"'))
            .ok_or_else(|| {
                format!("lint.allow.toml:{lineno}: value for `{key}` must be a \"quoted string\"")
            })?;
        let Some((_, fields)) = current.as_mut() else {
            return Err(format!(
                "lint.allow.toml:{lineno}: `{key}` outside an [[allow]] table"
            ));
        };
        let slot = match key {
            "rule" => 0,
            "path" => 1,
            "pattern" => 2,
            "reason" => 3,
            _ => {
                return Err(format!(
                "lint.allow.toml:{lineno}: unknown key `{key}` (expected rule/path/pattern/reason)"
            ))
            }
        };
        if fields[slot].is_some() {
            return Err(format!("lint.allow.toml:{lineno}: duplicate key `{key}`"));
        }
        fields[slot] = Some(value.to_string());
    }
    finish(&mut current, &mut entries)?;
    Ok(entries)
}

fn finish(
    current: &mut Option<(usize, [Option<String>; 4])>,
    entries: &mut Vec<AllowEntry>,
) -> Result<(), String> {
    let Some((line, fields)) = current.take() else {
        return Ok(());
    };
    let [rule, path, pattern, reason] = fields;
    let missing =
        |name: &str| format!("lint.allow.toml:{line}: [[allow]] entry is missing the `{name}` key");
    entries.push(AllowEntry {
        rule: rule.ok_or_else(|| missing("rule"))?,
        path: path.ok_or_else(|| missing("path"))?,
        pattern: pattern.ok_or_else(|| missing("pattern"))?,
        reason: reason.ok_or_else(|| missing("reason"))?,
        line,
    });
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_entries_and_comments() {
        let src = r#"
# wall-clock metric
[[allow]]
rule = "determinism"
path = "crates/harl/src/optimizer.rs"
pattern = "Instant::now"
reason = "plan_wall_s"

[[allow]]
rule = "float-eq"
path = "crates/harl/src/optimizer.rs"
pattern = "b.cost == a.cost"
reason = "exact tie-break"
"#;
        let entries = parse(src).unwrap();
        assert_eq!(entries.len(), 2);
        assert_eq!(entries[0].rule, "determinism");
        assert_eq!(entries[1].pattern, "b.cost == a.cost");
        assert_eq!(entries[0].line, 3);
    }

    #[test]
    fn missing_key_is_an_error() {
        let src = "[[allow]]\nrule = \"determinism\"\npath = \"x.rs\"\npattern = \"y\"\n";
        let err = parse(src).unwrap_err();
        assert!(err.contains("missing the `reason` key"), "{err}");
    }

    #[test]
    fn unknown_key_is_an_error() {
        let src = "[[allow]]\nrule = \"x\"\nfile = \"y\"\n";
        assert!(parse(src).unwrap_err().contains("unknown key `file`"));
    }

    #[test]
    fn unquoted_value_is_an_error() {
        let src = "[[allow]]\nrule = determinism\n";
        assert!(parse(src).unwrap_err().contains("quoted string"));
    }

    #[test]
    fn empty_file_is_empty_allowlist() {
        assert_eq!(parse("# nothing here\n").unwrap(), vec![]);
    }
}
