//! The `harl-lint` binary: lint the workspace, print findings, exit
//! non-zero on any non-allowlisted violation. See DESIGN.md Appendix D.

// Bin-crate panic hygiene: failures exit with a message, never a
// backtrace. Mirrors the library tier (see lib.rs).
#![cfg_attr(
    not(test),
    deny(clippy::unwrap_used, clippy::expect_used, clippy::panic)
)]

use std::path::PathBuf;
use std::process::ExitCode;

const USAGE: &str = "\
harl-lint: project-specific static analysis for the HARL workspace

USAGE:
    harl-lint [--root PATH] [--allow PATH] [--json]

OPTIONS:
    --root PATH     workspace root to scan (default: .)
    --allow PATH    allowlist file (default: <root>/lint.allow.toml)
    --json          machine-readable output
    -h, --help      this help

EXIT STATUS:
    0  clean (allowlisted exceptions are fine)
    1  at least one non-allowlisted finding (incl. stale allow entries)
    2  usage or I/O error
";

fn main() -> ExitCode {
    let mut root = PathBuf::from(".");
    let mut allow: Option<PathBuf> = None;
    let mut json = false;
    let mut argv = std::env::args().skip(1);
    while let Some(arg) = argv.next() {
        match arg.as_str() {
            "--json" => json = true,
            "--root" => match argv.next() {
                Some(v) => root = PathBuf::from(v),
                None => return usage_error("--root needs a value"),
            },
            "--allow" => match argv.next() {
                Some(v) => allow = Some(PathBuf::from(v)),
                None => return usage_error("--allow needs a value"),
            },
            "-h" | "--help" => {
                print!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other => return usage_error(&format!("unknown argument `{other}`")),
        }
    }
    let allow = allow.unwrap_or_else(|| root.join("lint.allow.toml"));
    match harl_lint::run(&root, &allow) {
        Ok(report) => {
            if json {
                print!("{}", harl_lint::render_json(&report));
            } else {
                print!("{}", harl_lint::render_human(&report));
            }
            if report.is_clean() {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
        Err(e) => {
            eprintln!("harl-lint: {e}");
            ExitCode::from(2)
        }
    }
}

fn usage_error(msg: &str) -> ExitCode {
    eprintln!("harl-lint: {msg}\n\n{USAGE}");
    ExitCode::from(2)
}
