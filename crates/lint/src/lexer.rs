//! A minimal token-level lexer for Rust source.
//!
//! This is deliberately *not* a parser: the lint rules only need a stream
//! of identifiers, literals, and punctuation with comments and string
//! contents stripped out, so a few hundred lines of hand-rolled scanning
//! keep the crate dependency-free (no `syn`, no proc-macro machinery).
//!
//! Known approximations, acceptable for lint purposes and backstopped by
//! clippy where it matters:
//!
//! - nested tuple field access (`x.0.1`) lexes the tail as one numeric
//!   token unless preceded by `.` (the common single level is exact);
//! - float literals with a trailing dot (`2.`) lex as an integer followed
//!   by `.` and are invisible to the float-equality rule
//!   (`clippy::float_cmp` catches those).

/// Kind of a lexed token.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (including `as`, `fn`, `pub`, …).
    Ident,
    /// Numeric literal, suffix included (`100u64`, `0.5`, `1e-9`).
    Num,
    /// String, byte-string, raw-string, or char literal (contents kept but
    /// never matched by rules).
    Str,
    /// Lifetime or loop label (`'a`, `'outer`).
    Lifetime,
    /// Punctuation, with common multi-character operators fused
    /// (`==`, `!=`, `->`, `::`, `..=`, `>>`, …).
    Punct,
}

/// One lexed token with its 1-based source line.
#[derive(Debug, Clone)]
pub struct Tok {
    /// The token text exactly as written (for `Str`, including quotes).
    pub text: String,
    /// 1-based line the token starts on.
    pub line: usize,
    /// Token category.
    pub kind: TokKind,
}

impl Tok {
    /// True for a numeric literal that is lexically a float.
    pub fn is_float_literal(&self) -> bool {
        if self.kind != TokKind::Num {
            return false;
        }
        let t = &self.text;
        if t.starts_with("0x") || t.starts_with("0b") || t.starts_with("0o") {
            return false;
        }
        if t.contains('.') || t.ends_with("f32") || t.ends_with("f64") {
            return true;
        }
        // Exponent form: an `e`/`E` directly after the digit run, followed
        // by an optional sign and a digit (`1e9`, `2E-7`). The `e` of an
        // integer suffix (`0usize`) is never followed by a digit, so
        // suffixed integers stay ints.
        let b = t.as_bytes();
        let mut i = 0;
        while i < b.len() && (b[i].is_ascii_digit() || b[i] == b'_') {
            i += 1;
        }
        if i < b.len() && matches!(b[i], b'e' | b'E') {
            let mut k = i + 1;
            if k < b.len() && matches!(b[k], b'+' | b'-') {
                k += 1;
            }
            return k < b.len() && b[k].is_ascii_digit();
        }
        false
    }
}

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Three- then two-character punctuation fused into single tokens.
const PUNCT3: &[&str] = &["..=", "<<=", ">>=", "..."];
const PUNCT2: &[&str] = &[
    "==", "!=", "<=", ">=", "&&", "||", "->", "=>", "::", "..", "<<", ">>", "+=", "-=", "*=", "/=",
    "%=", "^=", "&=", "|=",
];

/// Lex `src` into tokens, stripping comments.
///
/// The lexer never fails: malformed input degrades to single-character
/// punctuation tokens, which at worst makes a rule miss — never crash.
pub fn lex(src: &str) -> Vec<Tok> {
    let chars: Vec<char> = src.chars().collect();
    let n = chars.len();
    let mut toks: Vec<Tok> = Vec::new();
    let mut i = 0;
    let mut line = 1;
    while i < n {
        let c = chars[i];
        if c == '\n' {
            line += 1;
            i += 1;
            continue;
        }
        if c.is_whitespace() {
            i += 1;
            continue;
        }
        // Line comment (also doc comments).
        if c == '/' && i + 1 < n && chars[i + 1] == '/' {
            while i < n && chars[i] != '\n' {
                i += 1;
            }
            continue;
        }
        // Block comment, nesting supported.
        if c == '/' && i + 1 < n && chars[i + 1] == '*' {
            let mut depth = 1usize;
            i += 2;
            while i < n && depth > 0 {
                if chars[i] == '\n' {
                    line += 1;
                    i += 1;
                } else if chars[i] == '/' && i + 1 < n && chars[i + 1] == '*' {
                    depth += 1;
                    i += 2;
                } else if chars[i] == '*' && i + 1 < n && chars[i + 1] == '/' {
                    depth -= 1;
                    i += 2;
                } else {
                    i += 1;
                }
            }
            continue;
        }
        // Raw strings (r"…", r#"…"#), byte strings (b"…"), raw byte strings
        // (br#"…"#), and raw identifiers (r#ident).
        if c == 'r' || c == 'b' {
            if let Some((tok, next, lines)) = lex_r_or_b(&chars, i, line) {
                toks.push(tok);
                i = next;
                line += lines;
                continue;
            }
        }
        // Plain string literal.
        if c == '"' {
            let (tok, next, lines) = lex_string(&chars, i, line);
            toks.push(tok);
            i = next;
            line += lines;
            continue;
        }
        // Char literal vs lifetime/label.
        if c == '\'' {
            let (tok, next) = lex_quote(&chars, i, line);
            toks.push(tok);
            i = next;
            continue;
        }
        if is_ident_start(c) {
            let start = i;
            while i < n && is_ident_continue(chars[i]) {
                i += 1;
            }
            toks.push(Tok {
                text: chars[start..i].iter().collect(),
                line,
                kind: TokKind::Ident,
            });
            continue;
        }
        if c.is_ascii_digit() {
            let (tok, next) = lex_number(&chars, i, line, toks.last());
            toks.push(tok);
            i = next;
            continue;
        }
        // Punctuation: longest fused operator first.
        let rest3: String = chars[i..n.min(i + 3)].iter().collect();
        if PUNCT3.contains(&rest3.as_str()) {
            toks.push(Tok {
                text: rest3,
                line,
                kind: TokKind::Punct,
            });
            i += 3;
            continue;
        }
        let rest2: String = chars[i..n.min(i + 2)].iter().collect();
        if PUNCT2.contains(&rest2.as_str()) {
            toks.push(Tok {
                text: rest2,
                line,
                kind: TokKind::Punct,
            });
            i += 2;
            continue;
        }
        toks.push(Tok {
            text: c.to_string(),
            line,
            kind: TokKind::Punct,
        });
        i += 1;
    }
    toks
}

/// Handle the `r…`/`b…` prefixes when they start a literal; `None` means
/// "just an identifier beginning with r/b — lex normally".
fn lex_r_or_b(chars: &[char], i: usize, line: usize) -> Option<(Tok, usize, usize)> {
    let n = chars.len();
    let c = chars[i];
    let next = chars.get(i + 1).copied();
    match (c, next) {
        // b'…' byte char literal.
        ('b', Some('\'')) => {
            let (tok, end) = lex_quote(chars, i + 1, line);
            let mut text = String::from("b");
            text.push_str(&tok.text);
            Some((
                Tok {
                    text,
                    line,
                    kind: TokKind::Str,
                },
                end,
                0,
            ))
        }
        // b"…" byte string.
        ('b', Some('"')) => {
            let (tok, end, lines) = lex_string(chars, i + 1, line);
            let mut text = String::from("b");
            text.push_str(&tok.text);
            Some((
                Tok {
                    text,
                    line,
                    kind: TokKind::Str,
                },
                end,
                lines,
            ))
        }
        // br"…" / br#"…"# raw byte string.
        ('b', Some('r')) => {
            let after = chars.get(i + 2).copied();
            if after == Some('"') || after == Some('#') {
                lex_raw_string(chars, i, i + 2, line)
            } else {
                None
            }
        }
        // r"…" / r#"…"# raw string — but r#ident is a raw identifier.
        ('r', Some('"')) => lex_raw_string(chars, i, i + 1, line),
        ('r', Some('#')) => {
            // Count hashes; a quote after them means raw string, an
            // identifier character means raw identifier.
            let mut j = i + 1;
            while j < n && chars[j] == '#' {
                j += 1;
            }
            if j < n && chars[j] == '"' {
                lex_raw_string(chars, i, i + 1, line)
            } else {
                // Raw identifier r#foo: lex as Ident including the prefix.
                let start = i;
                let mut k = i + 2;
                while k < n && is_ident_continue(chars[k]) {
                    k += 1;
                }
                Some((
                    Tok {
                        text: chars[start..k].iter().collect(),
                        line,
                        kind: TokKind::Ident,
                    },
                    k,
                    0,
                ))
            }
        }
        _ => None,
    }
}

/// Lex a raw string whose hashes start at `hash_start` (`start` is the
/// index of the `r`/`b` prefix, kept for the token text).
fn lex_raw_string(
    chars: &[char],
    start: usize,
    hash_start: usize,
    line: usize,
) -> Option<(Tok, usize, usize)> {
    let n = chars.len();
    let mut j = hash_start;
    let mut hashes = 0usize;
    while j < n && chars[j] == '#' {
        hashes += 1;
        j += 1;
    }
    if j >= n || chars[j] != '"' {
        return None;
    }
    j += 1;
    let mut lines = 0usize;
    while j < n {
        if chars[j] == '\n' {
            lines += 1;
            j += 1;
            continue;
        }
        if chars[j] == '"' {
            let after = &chars[j + 1..n.min(j + 1 + hashes)];
            if after.len() == hashes && after.iter().all(|&h| h == '#') {
                j += 1 + hashes;
                return Some((
                    Tok {
                        text: chars[start..j].iter().collect(),
                        line,
                        kind: TokKind::Str,
                    },
                    j,
                    lines,
                ));
            }
        }
        j += 1;
    }
    // Unterminated raw string: consume to EOF.
    Some((
        Tok {
            text: chars[start..].iter().collect(),
            line,
            kind: TokKind::Str,
        },
        n,
        lines,
    ))
}

/// Lex a `"…"` string starting at `i` (which must be the opening quote).
fn lex_string(chars: &[char], i: usize, line: usize) -> (Tok, usize, usize) {
    let n = chars.len();
    let start = i;
    let mut j = i + 1;
    let mut lines = 0usize;
    while j < n {
        match chars[j] {
            // An escape consumes two chars; `\` before a newline is the
            // line-continuation form, and that newline still counts.
            '\\' => {
                if j + 1 < n && chars[j + 1] == '\n' {
                    lines += 1;
                }
                j += 2;
            }
            '\n' => {
                lines += 1;
                j += 1;
            }
            '"' => {
                j += 1;
                break;
            }
            _ => j += 1,
        }
    }
    (
        Tok {
            text: chars[start..j.min(n)].iter().collect(),
            line,
            kind: TokKind::Str,
        },
        j.min(n),
        lines,
    )
}

/// Lex at a `'`: either a char literal (`'a'`, `'\n'`) or a lifetime/label
/// (`'a`, `'outer`).
fn lex_quote(chars: &[char], i: usize, line: usize) -> (Tok, usize) {
    let n = chars.len();
    // Escaped char literal: '\…'.
    if i + 1 < n && chars[i + 1] == '\\' {
        let mut j = i + 2;
        while j < n && chars[j] != '\'' {
            j += 1;
        }
        let j = (j + 1).min(n);
        return (
            Tok {
                text: chars[i..j].iter().collect(),
                line,
                kind: TokKind::Str,
            },
            j,
        );
    }
    // Plain char literal: 'x' (any single char followed by a quote).
    if i + 2 < n && chars[i + 2] == '\'' {
        return (
            Tok {
                text: chars[i..i + 3].iter().collect(),
                line,
                kind: TokKind::Str,
            },
            i + 3,
        );
    }
    // Lifetime or label: consume identifier characters.
    let mut j = i + 1;
    while j < n && is_ident_continue(chars[j]) {
        j += 1;
    }
    (
        Tok {
            text: chars[i..j].iter().collect(),
            line,
            kind: TokKind::Lifetime,
        },
        j,
    )
}

/// Lex a numeric literal at `i`. `prev` is the previously emitted token:
/// after a `.` (tuple field access) the fractional-part heuristic is
/// disabled so `x.0.1` does not glue `0.1` into a float.
fn lex_number(chars: &[char], i: usize, line: usize, prev: Option<&Tok>) -> (Tok, usize) {
    let n = chars.len();
    let start = i;
    let mut j = i;
    let field_access = prev.is_some_and(|p| p.kind == TokKind::Punct && p.text == ".");
    if chars[j] == '0' && j + 1 < n && matches!(chars[j + 1], 'x' | 'b' | 'o') {
        j += 2;
        while j < n && (chars[j].is_ascii_alphanumeric() || chars[j] == '_') {
            j += 1;
        }
    } else {
        while j < n && (chars[j].is_ascii_digit() || chars[j] == '_') {
            j += 1;
        }
        // Fraction: a dot followed by a digit (excludes ranges `0..10` and
        // method calls `1.max(2)`).
        if !field_access && j + 1 < n && chars[j] == '.' && chars[j + 1].is_ascii_digit() {
            j += 1;
            while j < n && (chars[j].is_ascii_digit() || chars[j] == '_') {
                j += 1;
            }
        }
        // Exponent: e/E with optional sign, then digits.
        if j < n && matches!(chars[j], 'e' | 'E') {
            let sign = j + 1 < n && matches!(chars[j + 1], '+' | '-');
            let digits_at = if sign { j + 2 } else { j + 1 };
            if digits_at < n && chars[digits_at].is_ascii_digit() {
                j = digits_at;
                while j < n && (chars[j].is_ascii_digit() || chars[j] == '_') {
                    j += 1;
                }
            }
        }
        // Type suffix (u64, f64, usize, …).
        while j < n && (chars[j].is_ascii_alphanumeric() || chars[j] == '_') {
            j += 1;
        }
    }
    (
        Tok {
            text: chars[start..j].iter().collect(),
            line,
            kind: TokKind::Num,
        },
        j,
    )
}

/// Mark every token that belongs to a `#[cfg(test)]` item.
///
/// Returns a mask parallel to `toks`: `true` means "test-only code, exempt
/// from the rules". Since the v2 analyzer this delegates to the pass-1
/// item graph ([`crate::graph::Graph::test_mask`]), which inherits the
/// gate through nested `mod` blocks and `#[cfg(test)]`-gated `impl`
/// items, and also recognises bare `#[test]` functions and
/// `cfg(all(test, …))` lists — granularity the old flat attribute scan
/// did not have.
pub fn test_mask(toks: &[Tok]) -> Vec<bool> {
    crate::graph::Graph::build(toks).test_mask()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suffixed_integers_are_not_floats() {
        for t in lex("let a = 0usize; let b = 100u64; let c = 0xEEu8;") {
            if t.kind == TokKind::Num {
                assert!(!t.is_float_literal(), "{:?} misread as float", t.text);
            }
        }
    }

    #[test]
    fn float_forms_are_floats() {
        for src in ["0.5", "1e9", "2E-7", "3f64", "1_000.0", "7e5f32"] {
            let toks = lex(src);
            assert!(toks[0].is_float_literal(), "{src} misread as int");
        }
    }

    #[test]
    fn string_line_continuation_counts_its_newline() {
        // The string spans lines 1–2 via a `\` line continuation; the
        // following statement must land on line 3, not 2.
        let src = "let s = \"a \\\n   b\";\nlet after = 1;\n";
        let toks = lex(src);
        let after = toks.iter().find(|t| t.text == "after").unwrap();
        assert_eq!(after.line, 3);
    }
}
