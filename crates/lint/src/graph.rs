//! Pass 1 of the semantic analyzer: a lightweight item/module graph.
//!
//! The token stream from [`crate::lexer`] is segmented into a flat list of
//! [`Item`]s — functions, modules, impl blocks, `use` declarations, and
//! friends — each carrying its token span, body span, and an inherited
//! `#[cfg(test)]` flag. This is deliberately *not* a Rust parser: it
//! recognises just enough structure (attributes → visibility → modifiers →
//! item keyword → body braces or `;`) for the pass-2 rules to reason about
//! "which function am I in", "is this code test-only", and "what does this
//! function's signature say". Anything it cannot classify degrades to
//! [`ItemKind::Other`] with a best-effort span; the graph never fails.
//!
//! The graph fixes the two blind spots of the old flat `test_mask` scan:
//! `cfg(test)` now *inherits* through nested `mod` blocks and applies to
//! `impl` items (and everything inside them), because masking is computed
//! per item with the parent's flag threaded through the recursion.

use crate::lexer::{Tok, TokKind};

/// What kind of item a graph node is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ItemKind {
    /// `fn` — the unit the pass-2 rules iterate over.
    Fn,
    /// `mod name { … }` or `mod name;`
    Mod,
    /// `impl … { … }`
    Impl,
    /// `trait … { … }`
    Trait,
    /// `struct` / `enum` / `union` type definitions.
    TypeDef,
    /// `use …;`
    Use,
    /// `const` / `static` items.
    Const,
    /// `type X = …;`
    TypeAlias,
    /// `extern "C" { … }` blocks.
    ExternBlock,
    /// `macro_rules!` definitions and item-level macro invocations.
    Macro,
    /// Anything the segmenter could not classify.
    Other,
}

/// One item in the graph, with token-index spans into the lexed stream.
#[derive(Debug, Clone)]
pub struct Item {
    /// Item classification.
    pub kind: ItemKind,
    /// Declared name (`fn name`, `mod name`, …); empty for `impl`, `use`,
    /// extern blocks and macro invocations.
    pub name: String,
    /// Index of the first token of the item (its first attribute, or the
    /// visibility/keyword when unattributed).
    pub start: usize,
    /// Index of the item keyword token (`fn`, `mod`, `impl`, …).
    pub kw: usize,
    /// Token indices of the body braces `(open, close)`, inclusive, when
    /// the item is brace-terminated.
    pub body: Option<(usize, usize)>,
    /// One past the last token of the item.
    pub end: usize,
    /// 1-based source line of the item keyword.
    pub line: usize,
    /// True when the item (or any enclosing `mod`/`impl`) is gated on
    /// `#[cfg(test)]` (or carries `#[test]` itself).
    pub cfg_test: bool,
    /// Nesting depth: 0 for file-level items, +1 per enclosing
    /// `mod`/`impl`/`trait`/extern block.
    pub depth: usize,
}

/// The item graph for one source file.
#[derive(Debug)]
pub struct Graph {
    /// All items, in source order (parents before their children).
    pub items: Vec<Item>,
    n_tokens: usize,
}

impl Graph {
    /// Segment `toks` into the item graph.
    pub fn build(toks: &[Tok]) -> Graph {
        let mut items = Vec::new();
        parse_items(toks, 0, toks.len(), false, 0, &mut items);
        Graph {
            items,
            n_tokens: toks.len(),
        }
    }

    /// All `fn` items, production and test alike.
    pub fn fns(&self) -> impl Iterator<Item = &Item> {
        self.items.iter().filter(|it| it.kind == ItemKind::Fn)
    }

    /// Token mask parallel to the lexed stream: `true` marks tokens that
    /// belong to a `#[cfg(test)]`-gated item (directly or by inheritance
    /// through enclosing `mod`/`impl` blocks).
    pub fn test_mask(&self) -> Vec<bool> {
        let mut mask = vec![false; self.n_tokens];
        for it in &self.items {
            if it.cfg_test {
                for m in mask
                    .iter_mut()
                    .take(it.end.min(self.n_tokens))
                    .skip(it.start)
                {
                    *m = true;
                }
            }
        }
        mask
    }
}

/// Item-leading modifier keywords (between visibility and the item
/// keyword). `const` and `extern` double as item keywords and are handled
/// by lookahead in the segmenter.
const MODIFIERS: &[&str] = &["default", "unsafe", "async"];

/// Segment `toks[start..end]` into items, recursing into `mod`/`impl`/
/// `trait`/extern bodies. `inherited_test` is true inside a
/// `#[cfg(test)]`-gated ancestor.
fn parse_items(
    toks: &[Tok],
    start: usize,
    end: usize,
    mut inherited_test: bool,
    depth: usize,
    out: &mut Vec<Item>,
) {
    let mut i = start;
    while i < end {
        // Stray separators left over from conservative extent detection.
        if toks[i].kind == TokKind::Punct && matches!(toks[i].text.as_str(), ";" | ",") {
            i += 1;
            continue;
        }
        let item_start = i;
        let mut own_test = false;
        // Attributes. Inner `#![cfg(test)]` gates the whole remaining
        // scope; other inner attributes are skipped.
        loop {
            if toks[i].text == "#" && toks.get(i + 1).is_some_and(|t| t.text == "[") {
                if attr_is_test(toks, i + 2) {
                    own_test = true;
                }
                i = skip_balanced(toks, i + 1, end, "[", "]");
            } else if toks[i].text == "#"
                && toks.get(i + 1).is_some_and(|t| t.text == "!")
                && toks.get(i + 2).is_some_and(|t| t.text == "[")
            {
                if attr_is_test(toks, i + 3) {
                    inherited_test = true;
                    // The gate covers everything from here to scope end.
                    out.push(Item {
                        kind: ItemKind::Other,
                        name: String::new(),
                        start: item_start,
                        kw: i,
                        body: None,
                        end,
                        line: toks[i].line,
                        cfg_test: true,
                        depth,
                    });
                }
                i = skip_balanced(toks, i + 2, end, "[", "]");
            } else {
                break;
            }
            if i >= end {
                return;
            }
        }
        // Visibility: `pub`, `pub(crate)`, `pub(in path)`.
        if toks[i].text == "pub" {
            i += 1;
            if i < end && toks[i].text == "(" {
                i = skip_balanced(toks, i, end, "(", ")");
            }
        }
        // Modifiers, plus the `const fn` / `extern "C" fn` lookahead forms.
        while i < end {
            let t = toks[i].text.as_str();
            if MODIFIERS.contains(&t)
                || (t == "const" && toks.get(i + 1).is_some_and(|n| n.text == "fn"))
            {
                i += 1;
            } else if t == "extern" && toks.get(i + 1).is_some_and(|n| n.kind == TokKind::Str) {
                // `extern "C" fn` modifier or `extern "C" { … }` block; only
                // step past the pair when a `fn` follows, otherwise leave
                // `extern` as the item keyword.
                if toks.get(i + 2).is_some_and(|n| n.text == "fn") {
                    i += 2;
                } else {
                    break;
                }
            } else {
                break;
            }
        }
        if i >= end {
            return;
        }
        let kw = i;
        let cfg_test = inherited_test || own_test;
        let (kind, name) = classify(toks, kw, end);
        let (body, item_end) = item_extent(toks, kw, end);
        out.push(Item {
            kind,
            name,
            start: item_start,
            kw,
            body,
            end: item_end,
            line: toks[kw].line,
            cfg_test,
            depth,
        });
        if let Some((open, close)) = body {
            if matches!(
                kind,
                ItemKind::Mod | ItemKind::Impl | ItemKind::Trait | ItemKind::ExternBlock
            ) && close > open + 1
            {
                parse_items(toks, open + 1, close, cfg_test, depth + 1, out);
            }
        }
        i = item_end.max(i + 1);
    }
}

/// Classify the item starting at the keyword token `kw`.
fn classify(toks: &[Tok], kw: usize, end: usize) -> (ItemKind, String) {
    let next_ident = |from: usize| -> String {
        toks.get(from)
            .filter(|t| t.kind == TokKind::Ident && from < end)
            .map(|t| t.text.clone())
            .unwrap_or_default()
    };
    match toks[kw].text.as_str() {
        "fn" => (ItemKind::Fn, next_ident(kw + 1)),
        "mod" => (ItemKind::Mod, next_ident(kw + 1)),
        "impl" => (ItemKind::Impl, String::new()),
        "trait" => (ItemKind::Trait, next_ident(kw + 1)),
        "struct" | "enum" | "union" => (ItemKind::TypeDef, next_ident(kw + 1)),
        "use" => (ItemKind::Use, String::new()),
        "const" | "static" => (ItemKind::Const, next_ident(kw + 1)),
        "type" => (ItemKind::TypeAlias, next_ident(kw + 1)),
        "extern" => (ItemKind::ExternBlock, String::new()),
        "macro_rules" => (ItemKind::Macro, next_ident(kw + 2)),
        _ if toks.get(kw + 1).is_some_and(|t| t.text == "!") => (ItemKind::Macro, String::new()),
        _ => (ItemKind::Other, String::new()),
    }
}

/// Find the extent of the item whose keyword is at `from`: the matching
/// `}` of the first brace block opened at paren/bracket depth zero, or the
/// first `;` at depth zero. Returns `(body, one_past_end)`.
fn item_extent(toks: &[Tok], from: usize, end: usize) -> (Option<(usize, usize)>, usize) {
    let mut parens = 0i64;
    let mut brackets = 0i64;
    let mut j = from;
    while j < end {
        match toks[j].text.as_str() {
            "(" => parens += 1,
            ")" => parens -= 1,
            "[" => brackets += 1,
            "]" => brackets -= 1,
            "{" if parens <= 0 && brackets <= 0 => {
                let close = matching_brace(toks, j, end);
                return (Some((j, close)), (close + 1).min(end));
            }
            ";" if parens <= 0 && brackets <= 0 => return (None, j + 1),
            _ => {}
        }
        j += 1;
    }
    (None, end)
}

/// Index of the `}` matching the `{` at `open` (or the last token when
/// unbalanced — malformed input degrades, never panics).
fn matching_brace(toks: &[Tok], open: usize, end: usize) -> usize {
    let mut depth = 0i64;
    for (k, t) in toks.iter().enumerate().take(end).skip(open) {
        match t.text.as_str() {
            "{" => depth += 1,
            "}" => {
                depth -= 1;
                if depth == 0 {
                    return k;
                }
            }
            _ => {}
        }
    }
    end.saturating_sub(1)
}

/// Given the first token *inside* an attribute's brackets, decide whether
/// the attribute gates test-only code: `#[test]`, `#[cfg(test)]`, and
/// `cfg(...)` lists that mention `test` outside a `not(…)` (e.g.
/// `cfg(all(test, unix))` — over-masking is the safe direction for lint).
fn attr_is_test(toks: &[Tok], at: usize) -> bool {
    let Some(head) = toks.get(at) else {
        return false;
    };
    if head.text == "test" && toks.get(at + 1).is_some_and(|t| t.text == "]") {
        return true;
    }
    if head.text != "cfg" || toks.get(at + 1).is_none_or(|t| t.text != "(") {
        return false;
    }
    let mut depth = 0i64;
    let mut j = at + 1;
    let mut saw_test = false;
    while j < toks.len() {
        match toks[j].text.as_str() {
            "(" => depth += 1,
            ")" => {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            }
            "not" => return false,
            "test" => saw_test = true,
            _ => {}
        }
        j += 1;
    }
    saw_test
}

/// Given `open` at `toks[at]`, return the index just past its matching
/// `close`, bounded by `end`.
fn skip_balanced(toks: &[Tok], at: usize, end: usize, open: &str, close: &str) -> usize {
    let mut depth = 0i64;
    let mut j = at;
    while j < end {
        if toks[j].text == open {
            depth += 1;
        } else if toks[j].text == close {
            depth -= 1;
            if depth == 0 {
                return j + 1;
            }
        }
        j += 1;
    }
    end
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn graph_of(src: &str) -> Graph {
        Graph::build(&lex(src))
    }

    #[test]
    fn file_level_items_are_segmented() {
        let g = graph_of(
            "use std::collections::HashMap;\n\
             pub struct S { x: u64 }\n\
             pub fn f(x: u64) -> u64 { x + 1 }\n\
             const K: usize = 3;\n",
        );
        let kinds: Vec<ItemKind> = g.items.iter().map(|i| i.kind).collect();
        assert_eq!(
            kinds,
            vec![
                ItemKind::Use,
                ItemKind::TypeDef,
                ItemKind::Fn,
                ItemKind::Const
            ]
        );
        let f = g.fns().next().unwrap();
        assert_eq!(f.name, "f");
        assert!(f.body.is_some());
    }

    #[test]
    fn impl_and_mod_bodies_are_recursed() {
        let g = graph_of(
            "impl Foo {\n    pub fn a(&self) {}\n    fn b() {}\n}\n\
             mod inner { pub fn c() {} }\n",
        );
        let fns: Vec<&str> = g.fns().map(|f| f.name.as_str()).collect();
        assert_eq!(fns, vec!["a", "b", "c"]);
        assert!(g.fns().all(|f| f.depth == 1));
    }

    #[test]
    fn cfg_test_inherits_through_nested_mods() {
        let g = graph_of(
            "fn prod() {}\n\
             #[cfg(test)]\nmod tests {\n    mod nested {\n        fn helper() {}\n    }\n\
                 fn t() {}\n}\n",
        );
        for f in g.fns() {
            if f.name == "prod" {
                assert!(!f.cfg_test, "prod must stay unmasked");
            } else {
                assert!(f.cfg_test, "fn {} must inherit cfg(test)", f.name);
            }
        }
    }

    #[test]
    fn cfg_test_applies_to_impl_items() {
        let g = graph_of(
            "struct Foo;\n\
             #[cfg(test)]\nimpl Foo {\n    fn only_in_tests(&self) {}\n}\n\
             impl Foo {\n    fn in_prod(&self) {}\n}\n",
        );
        let test_fn = g.fns().find(|f| f.name == "only_in_tests").unwrap();
        let prod_fn = g.fns().find(|f| f.name == "in_prod").unwrap();
        assert!(test_fn.cfg_test);
        assert!(!prod_fn.cfg_test);
    }

    #[test]
    fn test_attribute_masks_bare_test_fns() {
        let g = graph_of("#[test]\nfn t() {}\nfn prod() {}\n");
        assert!(g.fns().find(|f| f.name == "t").unwrap().cfg_test);
        assert!(!g.fns().find(|f| f.name == "prod").unwrap().cfg_test);
    }

    #[test]
    fn cfg_not_test_is_not_masked() {
        let g = graph_of("#[cfg(not(test))]\nfn prod() {}\n");
        assert!(!g.fns().next().unwrap().cfg_test);
    }

    #[test]
    fn inner_cfg_test_gates_the_rest_of_the_scope() {
        let g = graph_of("mod tests {\n    #![cfg(test)]\n    fn t() {}\n}\nfn prod() {}\n");
        assert!(g.fns().find(|f| f.name == "t").unwrap().cfg_test);
        assert!(!g.fns().find(|f| f.name == "prod").unwrap().cfg_test);
    }

    #[test]
    fn const_struct_literal_does_not_swallow_the_next_item() {
        let g = graph_of("const X: Foo = Foo { a: 1 };\nfn after() {}\n");
        assert!(g.fns().any(|f| f.name == "after"));
    }

    #[test]
    fn mask_covers_attr_through_body() {
        let src = "#[cfg(test)]\nmod tests { fn t() { x.unwrap(); } }\nfn prod() {}\n";
        let toks = lex(src);
        let mask = Graph::build(&toks).test_mask();
        let unwrap_at = toks.iter().position(|t| t.text == "unwrap").unwrap();
        let prod_at = toks.iter().position(|t| t.text == "prod").unwrap();
        assert!(mask[unwrap_at]);
        assert!(!mask[prod_at]);
    }
}
