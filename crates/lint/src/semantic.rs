//! Pass 2 of the semantic analyzer: rules that need the item graph.
//!
//! These rules reason per-function — "which bindings in this `fn` are hash
//! containers", "is this `+=` inside a loop", "does this function return
//! `f64`" — which the flat token rules in [`crate::rules`] cannot express.
//! Like pass 1 they are heuristics over the token stream, tuned to the
//! shapes that actually occur in this workspace and pinned by the fixture
//! corpus in `crates/lint/tests`; clippy remains the type-aware backstop.
//!
//! | id | rule | hazard |
//! |----|------|--------|
//! | HL009 | `map-iteration-order` | iterating `HashMap`/`HashSet` into an output path |
//! | HL010 | `unordered-parallel-merge` | merging parallel worker results in arrival order |
//! | HL011 | `float-accumulation` | unpinned `f64` accumulation order in model code |

use std::collections::BTreeSet;

use crate::graph::Graph;
use crate::lexer::{Tok, TokKind};
use crate::rules::{push, RULE_FLOAT_ACC, RULE_MAP_ITER, RULE_PAR_MERGE};
use crate::Finding;

/// A `for`/`while`/`loop` construct inside a function body:
/// `kw` is the loop keyword, `open..=close` its body braces.
struct LoopSpan {
    kw: usize,
    open: usize,
    close: usize,
}

/// All loop constructs in `toks[lo..hi]`, in source order. Nested loops
/// each get their own span. `for<'a>` higher-ranked bounds are skipped.
fn loop_spans(toks: &[Tok], lo: usize, hi: usize) -> Vec<LoopSpan> {
    let mut out = Vec::new();
    let mut j = lo;
    while j < hi {
        let t = &toks[j];
        if t.kind == TokKind::Ident && matches!(t.text.as_str(), "for" | "while" | "loop") {
            if t.text == "for" && toks.get(j + 1).is_some_and(|n| n.text == "<") {
                j += 1;
                continue;
            }
            let mut parens = 0i64;
            let mut brackets = 0i64;
            let mut k = j + 1;
            while k < hi {
                match toks[k].text.as_str() {
                    "(" => parens += 1,
                    ")" => parens -= 1,
                    "[" => brackets += 1,
                    "]" => brackets -= 1,
                    "{" if parens <= 0 && brackets <= 0 => {
                        out.push(LoopSpan {
                            kw: j,
                            open: k,
                            close: matching_brace(toks, k, hi),
                        });
                        break;
                    }
                    ";" if parens <= 0 && brackets <= 0 => break,
                    _ => {}
                }
                k += 1;
            }
        }
        j += 1;
    }
    out
}

/// Index into `loops` of the innermost loop whose span contains `pos`
/// (header and body alike — a `rx.recv()` in a `while let` condition
/// belongs to that `while`).
fn innermost_containing(loops: &[LoopSpan], pos: usize) -> Option<usize> {
    loops
        .iter()
        .enumerate()
        .filter(|(_, l)| l.kw <= pos && pos <= l.close)
        .max_by_key(|(_, l)| l.kw)
        .map(|(i, _)| i)
}

fn matching_brace(toks: &[Tok], open: usize, hi: usize) -> usize {
    let mut depth = 0i64;
    for (k, t) in toks.iter().enumerate().take(hi).skip(open) {
        match t.text.as_str() {
            "{" => depth += 1,
            "}" => {
                depth -= 1;
                if depth == 0 {
                    return k;
                }
            }
            _ => {}
        }
    }
    hi.saturating_sub(1)
}

fn matching_paren(toks: &[Tok], open: usize) -> usize {
    let mut depth = 0i64;
    for (k, t) in toks.iter().enumerate().skip(open) {
        match t.text.as_str() {
            "(" => depth += 1,
            ")" => {
                depth -= 1;
                if depth == 0 {
                    return k;
                }
            }
            _ => {}
        }
    }
    toks.len().saturating_sub(1)
}

/// Bounds `[start, end)` of the statement containing `toks[at]`, clamped
/// to `lo..hi`. Stops at `;` and at block braces at the statement's own
/// nesting depth; statements containing block expressions degrade to a
/// truncated span, which only ever makes the rules quieter.
fn stmt_bounds(toks: &[Tok], at: usize, lo: usize, hi: usize) -> (usize, usize) {
    let mut depth = 0i64;
    let mut s = at;
    while s > lo {
        match toks[s - 1].text.as_str() {
            ")" | "]" | "}" => depth += 1,
            "(" | "[" | "{" => {
                if depth == 0 {
                    break;
                }
                depth -= 1;
            }
            ";" if depth == 0 => break,
            _ => {}
        }
        s -= 1;
    }
    let mut depth = 0i64;
    let mut e = at;
    while e < hi {
        match toks[e].text.as_str() {
            "(" | "[" | "{" => depth += 1,
            ")" | "]" | "}" => {
                if depth == 0 {
                    break;
                }
                depth -= 1;
            }
            ";" if depth == 0 => break,
            _ => {}
        }
        e += 1;
    }
    (s, e)
}

/// A function signature: top-level parameter slices plus the parenthesis
/// span, for name extraction and return-type scanning.
struct Sig {
    params: Vec<(usize, usize)>,
    close: usize,
}

fn fn_signature(toks: &[Tok], kw: usize, limit: usize) -> Option<Sig> {
    let name = toks.get(kw + 1)?;
    if name.kind != TokKind::Ident {
        return None;
    }
    let mut j = kw + 2;
    if toks.get(j).is_some_and(|t| t.text == "<") {
        let mut depth = 0i64;
        while j < limit {
            match toks[j].text.as_str() {
                "<" => depth += 1,
                ">" => depth -= 1,
                ">>" => depth -= 2,
                _ => {}
            }
            j += 1;
            if depth <= 0 {
                break;
            }
        }
    }
    if toks.get(j).is_none_or(|t| t.text != "(") {
        return None;
    }
    let open = j;
    let close = matching_paren(toks, open);
    let mut params = Vec::new();
    let mut start = open + 1;
    let mut dp = 0i64;
    for (k, tok) in toks.iter().enumerate().take(close).skip(open + 1) {
        match tok.text.as_str() {
            "(" | "[" | "{" => dp += 1,
            ")" | "]" | "}" => dp -= 1,
            "," if dp == 0 => {
                params.push((start, k));
                start = k + 1;
            }
            _ => {}
        }
    }
    if start < close {
        params.push((start, close));
    }
    Some(Sig { params, close })
}

/// True when the signature between the parameter close-paren and the body
/// open-brace declares a bare `-> f64` return.
fn returns_f64(toks: &[Tok], sig_close: usize, body_open: usize) -> bool {
    (sig_close..body_open.saturating_sub(1))
        .any(|k| toks[k].text == "->" && toks.get(k + 1).is_some_and(|t| t.text == "f64"))
}

/// The declared name of a parameter slice: the first identifier followed
/// by `:` (skipping `mut` and reference sigils).
fn param_name(slice: &[Tok]) -> Option<String> {
    for (k, t) in slice.iter().enumerate() {
        if t.kind == TokKind::Ident
            && t.text != "mut"
            && slice.get(k + 1).is_some_and(|n| n.text == ":")
        {
            return Some(t.text.clone());
        }
    }
    None
}

/// Local `let` bindings in `toks[lo..hi]` whose initialising statement
/// matches `pred`, mapped to the bound name. Tuple/struct patterns are
/// skipped (no single name to track).
fn bindings_matching(
    toks: &[Tok],
    lo: usize,
    hi: usize,
    pred: impl Fn(&[Tok]) -> bool,
) -> BTreeSet<String> {
    let mut names = BTreeSet::new();
    let mut j = lo;
    while j < hi {
        if toks[j].kind == TokKind::Ident && toks[j].text == "let" {
            let (_, e) = stmt_bounds(toks, j, lo, hi);
            let stmt = &toks[j..e.min(hi)];
            let mut at = j + 1;
            if toks.get(at).is_some_and(|t| t.text == "mut") {
                at += 1;
            }
            if let Some(name) = toks.get(at) {
                if name.kind == TokKind::Ident && pred(stmt) {
                    names.insert(name.text.clone());
                }
            }
            j = e.min(hi).max(j + 1);
        } else {
            j += 1;
        }
    }
    names
}

/// Methods that iterate a collection in storage order.
const ITER_METHODS: &[&str] = &[
    "iter",
    "iter_mut",
    "into_iter",
    "keys",
    "into_keys",
    "values",
    "values_mut",
    "into_values",
    "drain",
];

/// Identifiers whose presence in the same statement makes hash-map
/// iteration order-safe: the result is sorted, rehomed into an ordered
/// container, or reduced by an order-insensitive aggregate.
fn order_safe_ident(t: &Tok) -> bool {
    t.kind == TokKind::Ident
        && (t.text.starts_with("sort")
            || t.text.starts_with("min")
            || t.text.starts_with("max")
            || matches!(
                t.text.as_str(),
                "BTreeMap"
                    | "BTreeSet"
                    | "count"
                    | "len"
                    | "is_empty"
                    | "sum"
                    | "product"
                    | "all"
                    | "any"
            ))
}

/// **map-iteration-order** (HL009) — in determinism-scope crates, a
/// `HashMap`/`HashSet` local or parameter must not be iterated unless the
/// result flows through a `sort`/`BTreeMap`/order-insensitive aggregate in
/// the same statement (or the collected binding is sorted immediately
/// after). Hash iteration order varies run-to-run with the hasher seed and
/// silently breaks byte-identical reports. Audited sites carry a
/// `// lint: audited-order` marker on the flagged line and a matching
/// `lint.allow.toml` entry.
pub fn map_iteration_order(
    path: &str,
    toks: &[Tok],
    mask: &[bool],
    lines: &[&str],
    graph: &Graph,
    out: &mut Vec<Finding>,
) {
    for f in graph.fns().filter(|f| !f.cfg_test) {
        let Some((blo, bhi)) = f.body else { continue };
        if mask.get(f.kw).copied().unwrap_or(false) {
            continue;
        }
        let hashy_stmt = |stmt: &[Tok]| {
            stmt.iter()
                .any(|t| t.text == "HashMap" || t.text == "HashSet")
        };
        let mut hashy = bindings_matching(toks, blo + 1, bhi, hashy_stmt);
        if let Some(sig) = fn_signature(toks, f.kw, blo) {
            for &(lo, hi) in &sig.params {
                let slice = &toks[lo..hi];
                if hashy_stmt(slice) {
                    if let Some(name) = param_name(slice) {
                        hashy.insert(name);
                    }
                }
            }
        }
        if hashy.is_empty() {
            continue;
        }
        let mut seen_lines = BTreeSet::new();
        // `for pat in expr { … }` over a hash container.
        for l in loop_spans(toks, blo + 1, bhi) {
            if toks[l.kw].text != "for" {
                continue;
            }
            let Some(in_pos) = (l.kw + 1..l.open).find(|&k| toks[k].text == "in") else {
                continue;
            };
            let expr = &toks[in_pos + 1..l.open];
            let iterates_hashy = expr
                .iter()
                .any(|t| t.kind == TokKind::Ident && hashy.contains(&t.text));
            if iterates_hashy
                && !expr.iter().any(order_safe_ident)
                && seen_lines.insert(toks[l.kw].line)
            {
                push(
                    out,
                    RULE_MAP_ITER,
                    path,
                    toks[l.kw].line,
                    "iterating a HashMap/HashSet in determinism-scope code: hash order varies \
                     run-to-run; sort the entries (or use a BTreeMap) before anything \
                     order-dependent, or mark an audited site with `// lint: audited-order`"
                        .to_string(),
                    lines,
                );
            }
        }
        // Method-chain iteration: `m.iter()…`, `m.keys()…`, ….
        for j in blo + 1..bhi {
            let t = &toks[j];
            if t.kind != TokKind::Ident
                || !ITER_METHODS.contains(&t.text.as_str())
                || toks.get(j + 1).is_none_or(|n| n.text != "(")
                || j < 2
                || toks[j - 1].text != "."
                || !(toks[j - 2].kind == TokKind::Ident && hashy.contains(&toks[j - 2].text))
            {
                continue;
            }
            let (s, e) = stmt_bounds(toks, j, blo + 1, bhi);
            if toks[s..e].iter().any(order_safe_ident) {
                continue;
            }
            // `let v: Vec<_> = m.iter()…collect();` followed by `v.sort…()`
            // is the canonical fix — look one statement ahead.
            if toks[s].text == "let" {
                let mut at = s + 1;
                if toks.get(at).is_some_and(|n| n.text == "mut") {
                    at += 1;
                }
                if let Some(name) = toks.get(at) {
                    let bound = name.text.clone();
                    let sorted_after = (e..(e + 48).min(bhi)).any(|k| {
                        toks[k].text == bound
                            && toks.get(k + 1).is_some_and(|n| n.text == ".")
                            && toks.get(k + 2).is_some_and(|n| n.text.starts_with("sort"))
                    });
                    if sorted_after {
                        continue;
                    }
                }
            }
            if seen_lines.insert(t.line) {
                push(
                    out,
                    RULE_MAP_ITER,
                    path,
                    t.line,
                    format!(
                        "`.{}()` on a HashMap/HashSet in determinism-scope code: hash order \
                         varies run-to-run; sort before emission (or use a BTreeMap), or mark an \
                         audited site with `// lint: audited-order`",
                        t.text
                    ),
                    lines,
                );
            }
        }
    }
}

/// Receiver calls that drain a channel.
const RECV_METHODS: &[&str] = &["recv", "try_recv", "recv_timeout"];
/// Appending merges whose result order is the arrival order.
const APPEND_METHODS: &[&str] = &["push", "extend", "append"];

fn has_indexed_store(toks: &[Tok], lo: usize, hi: usize) -> bool {
    (lo..hi.saturating_sub(1)).any(|k| toks[k].text == "]" && toks[k + 1].text == "=")
}

/// **unordered-parallel-merge** (HL010) — a loop that drains an mpsc
/// channel must not append the received results to a collection: arrival
/// order depends on thread scheduling. Canonical-order merges are quiet —
/// either an indexed store (`grants[i] = g`, the `pfs/shard.rs` consumer
/// shape) or a sort immediately after the loop. The same applies to
/// scoped-thread workers appending to a shared locked collection. Audited
/// sites (e.g. the shard worker's per-job keyed buffer) carry
/// `// lint: audited-order` plus an allowlist entry.
pub fn unordered_parallel_merge(
    path: &str,
    toks: &[Tok],
    mask: &[bool],
    lines: &[&str],
    graph: &Graph,
    out: &mut Vec<Finding>,
) {
    for f in graph.fns().filter(|f| !f.cfg_test) {
        let Some((blo, bhi)) = f.body else { continue };
        if mask.get(f.kw).copied().unwrap_or(false) {
            continue;
        }
        let loops = loop_spans(toks, blo + 1, bhi);
        let mut merge_loops = BTreeSet::new();
        for j in blo + 1..bhi {
            if toks[j].kind == TokKind::Ident
                && RECV_METHODS.contains(&toks[j].text.as_str())
                && toks.get(j + 1).is_some_and(|n| n.text == "(")
                && j > 0
                && toks[j - 1].text == "."
            {
                if let Some(li) = innermost_containing(&loops, j) {
                    merge_loops.insert(li);
                }
            }
        }
        for li in merge_loops {
            let l = &loops[li];
            if has_indexed_store(toks, l.open + 1, l.close) {
                continue;
            }
            let sorted_after = (l.close + 1..(l.close + 48).min(bhi))
                .any(|k| toks[k].kind == TokKind::Ident && toks[k].text.starts_with("sort"));
            if sorted_after {
                continue;
            }
            for k in l.open + 1..l.close {
                if toks[k].kind == TokKind::Ident
                    && APPEND_METHODS.contains(&toks[k].text.as_str())
                    && toks.get(k + 1).is_some_and(|n| n.text == "(")
                    && toks[k - 1].text == "."
                {
                    push(
                        out,
                        RULE_PAR_MERGE,
                        path,
                        toks[k].line,
                        format!(
                            "`.{}()` inside a channel-draining loop merges worker results in \
                             arrival order; merge in canonical key order (indexed store, or sort \
                             after the loop), or mark an audited site with \
                             `// lint: audited-order`",
                            toks[k].text
                        ),
                        lines,
                    );
                }
            }
        }
        // Scoped-thread shape: a spawned closure appending to a shared
        // collection under a lock publishes in scheduling order.
        for j in blo + 1..bhi {
            if toks[j].text != "spawn" || toks.get(j + 1).is_none_or(|n| n.text != "(") {
                continue;
            }
            let close = matching_paren(toks, j + 1);
            let locky = (j + 2..close).any(|k| {
                matches!(toks[k].text.as_str(), "lock" | "try_lock")
                    && toks.get(k + 1).is_some_and(|n| n.text == "(")
            });
            if !locky || has_indexed_store(toks, j + 2, close) {
                continue;
            }
            for k in j + 2..close {
                if toks[k].kind == TokKind::Ident
                    && APPEND_METHODS.contains(&toks[k].text.as_str())
                    && toks.get(k + 1).is_some_and(|n| n.text == "(")
                    && toks[k - 1].text == "."
                {
                    push(
                        out,
                        RULE_PAR_MERGE,
                        path,
                        toks[k].line,
                        format!(
                            "`.{}()` on a locked shared collection from a spawned worker \
                             publishes in scheduling order; collect per-worker and merge in \
                             canonical key order on the owning thread",
                            toks[k].text
                        ),
                        lines,
                    );
                }
            }
        }
    }
}

/// **float-accumulation** (HL011) — in model/optimizer code, `f64`
/// accumulation must go through the fixed-order helpers in `harl::fold`:
/// a bare `x += …` on an `f64` local inside a loop, or an `.sum()` whose
/// element type is `f64` (turbofish, `let …: f64` annotation, or tail
/// expression of a `-> f64` function), leaves the accumulation order
/// implicit. Today's order happens to be deterministic, but any future
/// chunking/parallelising of the surrounding iterator silently changes the
/// result bits; `fold::sum_f64`/`fold::OrderedSum` pin it structurally.
pub fn float_accumulation(
    path: &str,
    toks: &[Tok],
    mask: &[bool],
    lines: &[&str],
    graph: &Graph,
    out: &mut Vec<Finding>,
) {
    for f in graph.fns().filter(|f| !f.cfg_test) {
        let Some((blo, bhi)) = f.body else { continue };
        if mask.get(f.kw).copied().unwrap_or(false) {
            continue;
        }
        let floaty = bindings_matching(toks, blo + 1, bhi, |stmt| {
            stmt.iter().any(|t| t.text == "f64" || t.is_float_literal())
        });
        let loops = loop_spans(toks, blo + 1, bhi);
        let sig = fn_signature(toks, f.kw, blo);
        let ret_f64 = sig
            .as_ref()
            .is_some_and(|s| returns_f64(toks, s.close, blo));
        for j in blo + 1..bhi {
            let t = &toks[j];
            if t.text == "+=" && t.kind == TokKind::Punct {
                let lhs_floaty = toks
                    .get(j - 1)
                    .is_some_and(|p| p.kind == TokKind::Ident && floaty.contains(&p.text));
                if lhs_floaty && innermost_containing(&loops, j).is_some() {
                    push(
                        out,
                        RULE_FLOAT_ACC,
                        path,
                        t.line,
                        format!(
                            "`{} += …` accumulates f64 in a loop with implicit order; use \
                             harl::fold::OrderedSum (or fold::sum_f64 over an iterator) to pin \
                             the accumulation order",
                            toks[j - 1].text
                        ),
                        lines,
                    );
                }
            }
            if t.kind == TokKind::Ident && t.text == "sum" && j > 0 && toks[j - 1].text == "." {
                let turbo_f64 = toks.get(j + 1).is_some_and(|n| n.text == "::")
                    && toks.get(j + 2).is_some_and(|n| n.text == "<")
                    && toks.get(j + 3).is_some_and(|n| n.text == "f64");
                let call_paren = if turbo_f64 { j + 5 } else { j + 1 };
                if toks.get(call_paren).is_none_or(|n| n.text != "(") {
                    continue;
                }
                let (s, _) = stmt_bounds(toks, j, blo + 1, bhi);
                let annotated_f64 = toks[s].text == "let" && {
                    let eq = (s..j).find(|&k| toks[k].text == "=").unwrap_or(j);
                    toks[s..eq].iter().any(|t| t.text == "f64")
                };
                let tail_f64 = ret_f64
                    && toks.get(call_paren + 1).is_some_and(|n| n.text == ")")
                    && call_paren + 2 == bhi;
                if turbo_f64 || annotated_f64 || tail_f64 {
                    push(
                        out,
                        RULE_FLOAT_ACC,
                        path,
                        t.line,
                        "`.sum()` over f64 leaves the accumulation order implicit; use \
                         harl::fold::sum_f64(iter) so the fixed left-to-right order is explicit"
                            .to_string(),
                        lines,
                    );
                }
            }
        }
    }
}
