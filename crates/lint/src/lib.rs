//! `harl-lint`: project-specific static analysis for the HARL workspace.
//!
//! The compiler and clippy cannot check the two properties this
//! reproduction lives on: **bit-determinism** (same Scenario + seed ⇒
//! byte-identical report) and **cost-model numeric hygiene** (Sec. III-D,
//! Eqs. 1–8). This crate is a two-pass semantic analyzer (still no parser
//! crate, no dependencies): pass 1 segments the token stream into a
//! lightweight item/module graph (`graph`), pass 2 runs the token rules
//! (`rules`) and the graph-aware semantic rules (`semantic`) described in
//! DESIGN.md Appendix D:
//!
//! | rule | scope | meaning |
//! |------|-------|---------|
//! | `determinism` | simulated-time crates | no `Instant`/`SystemTime`/env entropy |
//! | `panic-hygiene` | library crates | no `unwrap`/`expect`/`panic!` outside tests |
//! | `cast-hygiene` | cost-model files | no bare `as <int>` casts |
//! | `float-eq` | cost-model files | no `==`/`!=` on floats |
//! | `simcontext-first` | everywhere | `&SimContext` is the first non-self arg |
//! | `recorded-twins` | everywhere | no `*_recorded` API resurrection |
//! | `metric-registry` | everywhere but `registry.rs` | no quoted metric names at Recorder calls |
//! | `two-tier-hygiene` | everywhere but `compat.rs` | no new `(h: u64, s: u64)` pair parameters |
//! | `map-iteration-order` | simulated-time crates | no HashMap/HashSet iteration without ordering |
//! | `unordered-parallel-merge` | simulated-time crates | parallel results merge in canonical key order |
//! | `float-accumulation` | `crates/harl` (minus `fold.rs`) | f64 accumulation via `harl::fold` helpers |
//!
//! Legitimate exceptions live in `lint.allow.toml` (rule + path + line
//! pattern + reason); unused entries are reported as `stale-allow` so the
//! allowlist ratchets down, never silently up.

// missing_docs / rust_2018_idioms come from [workspace.lints]. The
// cfg_attr tier mirrors this crate's own panic-hygiene rule at compile
// time; unit tests compile under cfg(test) and stay exempt.
#![cfg_attr(
    not(test),
    deny(clippy::unwrap_used, clippy::expect_used, clippy::panic)
)]

pub mod allow;
pub mod graph;
pub mod lexer;
pub mod rules;
pub mod semantic;

use std::fmt::Write as _;
use std::fs;
use std::path::{Path, PathBuf};

/// One rule violation (or allowlisted exception) at a source location.
#[derive(Debug, Clone)]
pub struct Finding {
    /// Rule name (one of the `rules::RULE_*` constants).
    pub rule: String,
    /// Repo-relative path with forward slashes.
    pub path: String,
    /// 1-based source line.
    pub line: usize,
    /// Human-readable explanation.
    pub message: String,
    /// The trimmed source line, for context and allowlist matching.
    pub snippet: String,
    /// True when an allowlist entry covers this finding.
    pub allowed: bool,
}

/// Result of a lint run over the workspace.
#[derive(Debug)]
pub struct Report {
    /// All findings, allowlisted ones included.
    pub findings: Vec<Finding>,
    /// Number of `.rs` files scanned.
    pub files_scanned: usize,
    /// Number of allowlist entries loaded.
    pub allow_entries: usize,
}

impl Report {
    /// Findings not covered by the allowlist — these fail the run.
    pub fn violations(&self) -> impl Iterator<Item = &Finding> {
        self.findings.iter().filter(|f| !f.allowed)
    }

    /// True when the workspace is clean (no non-allowlisted findings).
    pub fn is_clean(&self) -> bool {
        self.violations().next().is_none()
    }
}

/// Files and directories where wall-clock/entropy access is forbidden:
/// everything that runs under simulated time. `crates/bench` is the
/// wall-clock harness by design and is deliberately out of scope.
const DETERMINISM_SCOPES: &[&str] = &[
    "crates/simcore/src/",
    "crates/pfs/src/",
    "crates/middleware/src/",
    "crates/harl/src/",
];

/// Library crates swept free of panics (binaries and the bench harness may
/// still fail fast on user error).
const PANIC_SCOPES: &[&str] = &[
    "crates/harl/src/",
    "crates/simcore/src/",
    "crates/pfs/src/",
    "crates/middleware/src/",
    "crates/workloads/src/",
    "crates/devices/src/",
];

/// The Sec. III-D cost-model implementation, held to the strictest
/// numeric rules.
const CAST_SCOPES: &[&str] = &[
    "crates/harl/src/model.rs",
    "crates/harl/src/optimizer.rs",
    "crates/harl/src/analysis.rs",
];

fn in_scope(path: &str, scopes: &[&str]) -> bool {
    scopes.iter().any(|s| path.starts_with(s))
}

/// Model/optimizer code held to fixed-order float accumulation
/// (`harl::fold`). The fold helpers themselves implement the pinned-order
/// loops the rule pushes everyone else towards, so `fold.rs` is the one
/// file out of scope.
const FLOAT_ACC_SCOPES: &[&str] = &["crates/harl/src/"];

/// Run every applicable rule on one file's source. Public so the fixture
/// tests can aim rules at synthetic paths.
///
/// Two passes: the item graph is built once (`graph::Graph::build`), the
/// token rules and the graph-aware semantic rules then share its
/// `#[cfg(test)]` mask.
pub fn scan_source(path: &str, source: &str) -> Vec<Finding> {
    let toks = lexer::lex(source);
    let graph = graph::Graph::build(&toks);
    let mask = graph.test_mask();
    let lines: Vec<&str> = source.lines().collect();
    let mut out = Vec::new();
    if in_scope(path, DETERMINISM_SCOPES) {
        rules::determinism(path, &toks, &mask, &lines, &mut out);
        semantic::map_iteration_order(path, &toks, &mask, &lines, &graph, &mut out);
        semantic::unordered_parallel_merge(path, &toks, &mask, &lines, &graph, &mut out);
    }
    if in_scope(path, FLOAT_ACC_SCOPES) && !path.ends_with("fold.rs") {
        semantic::float_accumulation(path, &toks, &mask, &lines, &graph, &mut out);
    }
    if in_scope(path, PANIC_SCOPES) {
        rules::panic_hygiene(path, &toks, &mask, &lines, &mut out);
    }
    if in_scope(path, CAST_SCOPES) {
        rules::cast_hygiene(path, &toks, &mask, &lines, &mut out);
        rules::float_eq(path, &toks, &mask, &lines, &mut out);
    }
    rules::simcontext_first(path, &toks, &mask, &lines, &mut out);
    rules::recorded_twins(path, &toks, &mask, &lines, &mut out);
    if !path.ends_with("registry.rs") {
        rules::metric_registry(path, &toks, &mask, &lines, &mut out);
    }
    if !path.ends_with("compat.rs") {
        rules::two_tier_hygiene(path, &toks, &mask, &lines, &mut out);
    }
    out
}

/// Directory names never descended into: build output, vendored
/// dependencies, and per-crate test/bench/fixture trees (integration
/// tests and benches are exempt from the rules, like `#[cfg(test)]`).
const SKIP_DIRS: &[&str] = &["target", "vendor", "tests", "benches", "fixtures", ".git"];

fn walk(dir: &Path, files: &mut Vec<PathBuf>) -> Result<(), String> {
    let entries = fs::read_dir(dir).map_err(|e| format!("cannot read {}: {e}", dir.display()))?;
    let mut batch: Vec<PathBuf> = Vec::new();
    for entry in entries {
        let entry = entry.map_err(|e| format!("while walking {}: {e}", dir.display()))?;
        batch.push(entry.path());
    }
    // Deterministic scan order regardless of filesystem enumeration.
    batch.sort();
    for path in batch {
        let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
        if path.is_dir() {
            if !SKIP_DIRS.contains(&name) {
                walk(&path, files)?;
            }
        } else if name.ends_with(".rs") {
            files.push(path);
        }
    }
    Ok(())
}

/// Lint the workspace rooted at `root`, applying the allowlist at
/// `allow_path` (a missing allowlist file means "no exceptions").
pub fn run(root: &Path, allow_path: &Path) -> Result<Report, String> {
    let mut allow_entries = Vec::new();
    if allow_path.exists() {
        let src = fs::read_to_string(allow_path)
            .map_err(|e| format!("cannot read {}: {e}", allow_path.display()))?;
        allow_entries = allow::parse(&src)?;
    }
    let known_rules = [
        rules::RULE_DETERMINISM,
        rules::RULE_PANIC,
        rules::RULE_CAST,
        rules::RULE_FLOAT_EQ,
        rules::RULE_SIMCONTEXT,
        rules::RULE_RECORDED,
        rules::RULE_METRIC,
        rules::RULE_TWO_TIER,
        rules::RULE_MAP_ITER,
        rules::RULE_PAR_MERGE,
        rules::RULE_FLOAT_ACC,
    ];
    for e in &allow_entries {
        if !known_rules.contains(&e.rule.as_str()) {
            return Err(format!(
                "lint.allow.toml:{}: unknown rule `{}` (known: {})",
                e.line,
                e.rule,
                known_rules.join(", ")
            ));
        }
    }

    let mut files = Vec::new();
    let mut tops_found = 0usize;
    for top in ["crates", "src", "examples"] {
        let dir = root.join(top);
        if dir.is_dir() {
            tops_found += 1;
            walk(&dir, &mut files)?;
        }
    }
    // A root with none of the source trees is a mistyped --root, not a
    // clean workspace — scanning nothing must not pass CI.
    if tops_found == 0 {
        return Err(format!(
            "{}: no crates/, src/ or examples/ directory — is this the workspace root?",
            root.display()
        ));
    }

    let mut findings = Vec::new();
    let files_scanned = files.len();
    for file in files {
        let source = fs::read_to_string(&file)
            .map_err(|e| format!("cannot read {}: {e}", file.display()))?;
        let rel = file
            .strip_prefix(root)
            .unwrap_or(&file)
            .to_string_lossy()
            .replace('\\', "/");
        findings.extend(scan_source(&rel, &source));
    }

    // Apply the allowlist; count hits so stale entries surface.
    let mut hits = vec![0usize; allow_entries.len()];
    for f in &mut findings {
        for (i, e) in allow_entries.iter().enumerate() {
            if e.rule == f.rule && e.path == f.path && f.snippet.contains(&e.pattern) {
                f.allowed = true;
                hits[i] += 1;
            }
        }
    }
    for (e, &n) in allow_entries.iter().zip(&hits) {
        if n == 0 {
            let (id, _) = rules::rule_doc(&e.rule);
            findings.push(Finding {
                rule: rules::RULE_STALE_ALLOW.to_string(),
                path: "lint.allow.toml".to_string(),
                line: e.line,
                message: format!(
                    "allow entry for {id} (rule `{}`, path `{}`, pattern `{}`) matches nothing — \
                     the violation was fixed, so delete the entry",
                    e.rule, e.path, e.pattern
                ),
                snippet: format!("pattern = \"{}\"", e.pattern),
                allowed: false,
            });
        }
    }

    findings.sort_by(|a, b| (&a.path, a.line, &a.rule).cmp(&(&b.path, b.line, &b.rule)));
    Ok(Report {
        findings,
        files_scanned,
        allow_entries: allow_entries.len(),
    })
}

/// Human-readable report, one block per finding plus a summary line.
pub fn render_human(report: &Report) -> String {
    let mut out = String::new();
    for f in report.findings.iter().filter(|f| !f.allowed) {
        let (id, doc) = rules::rule_doc(&f.rule);
        let _ = writeln!(out, "{}:{}: [{}] {}", f.path, f.line, f.rule, f.message);
        if !f.snippet.is_empty() {
            let _ = writeln!(out, "    | {}", f.snippet);
        }
        let _ = writeln!(out, "    = {id}: {doc}");
    }
    let violations = report.violations().count();
    let allowed = report.findings.len() - violations;
    let _ = writeln!(
        out,
        "harl-lint: {} file(s) scanned, {} violation(s), {} allowlisted exception(s)",
        report.files_scanned, violations, allowed
    );
    out
}

/// Machine-readable report (`--json`). Rendered by hand: the lint crate
/// stays dependency-free so it can never be broken by the code it checks.
pub fn render_json(report: &Report) -> String {
    let mut out = String::from("{\n  \"findings\": [");
    for (i, f) in report.findings.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let (id, doc) = rules::rule_doc(&f.rule);
        let _ = write!(
            out,
            "\n    {{\"rule\": {}, \"id\": {}, \"doc\": {}, \"path\": {}, \"line\": {}, \
             \"message\": {}, \"snippet\": {}, \"allowed\": {}}}",
            json_str(&f.rule),
            json_str(id),
            json_str(doc),
            json_str(&f.path),
            f.line,
            json_str(&f.message),
            json_str(&f.snippet),
            f.allowed
        );
    }
    let violations = report.violations().count();
    let _ = write!(
        out,
        "\n  ],\n  \"files_scanned\": {},\n  \"allow_entries\": {},\n  \"violations\": {}\n}}\n",
        report.files_scanned, report.allow_entries, violations
    );
    out
}

fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scope_tables_are_prefixes() {
        assert!(in_scope("crates/harl/src/model.rs", CAST_SCOPES));
        assert!(!in_scope("crates/harl/src/rst.rs", CAST_SCOPES));
        assert!(in_scope(
            "crates/middleware/src/runtime.rs",
            DETERMINISM_SCOPES
        ));
        // The whole of simcore runs under simulated time; the profiler's
        // wall-clock timers survive via an allowlist entry, not a scope hole.
        assert!(in_scope(
            "crates/simcore/src/profiler.rs",
            DETERMINISM_SCOPES
        ));
        // The cluster-scale engine modules (calendar queue, sharded
        // fan-out pool) are load-bearing for bit-determinism and must
        // never fall out of scope.
        assert!(in_scope(
            "crates/simcore/src/calendar.rs",
            DETERMINISM_SCOPES
        ));
        assert!(in_scope("crates/pfs/src/shard.rs", DETERMINISM_SCOPES));
        assert!(in_scope("crates/pfs/src/shard.rs", PANIC_SCOPES));
        assert!(!in_scope(
            "crates/bench/src/planning.rs",
            DETERMINISM_SCOPES
        ));
        assert!(!in_scope("crates/bench/src/bin/harl_cli.rs", PANIC_SCOPES));
    }

    #[test]
    fn json_escaping() {
        assert_eq!(json_str("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
    }

    #[test]
    fn json_output_parses_by_eye() {
        let report = Report {
            findings: vec![Finding {
                rule: "determinism".into(),
                path: "crates/harl/src/x.rs".into(),
                line: 3,
                message: "m".into(),
                snippet: "let t = Instant::now();".into(),
                allowed: false,
            }],
            files_scanned: 1,
            allow_entries: 0,
        };
        let json = render_json(&report);
        assert!(json.contains("\"violations\": 1"), "{json}");
        assert!(json.contains("\"rule\": \"determinism\""), "{json}");
        assert!(json.contains("\"id\": \"HL001\""), "{json}");
        assert!(
            json.contains("\"doc\": \"DESIGN.md#rules-and-scopes\""),
            "{json}"
        );
    }

    #[test]
    fn every_rule_has_a_doc_id() {
        let mut seen = std::collections::BTreeSet::new();
        for rule in [
            rules::RULE_DETERMINISM,
            rules::RULE_PANIC,
            rules::RULE_CAST,
            rules::RULE_FLOAT_EQ,
            rules::RULE_SIMCONTEXT,
            rules::RULE_RECORDED,
            rules::RULE_METRIC,
            rules::RULE_TWO_TIER,
            rules::RULE_MAP_ITER,
            rules::RULE_PAR_MERGE,
            rules::RULE_FLOAT_ACC,
            rules::RULE_STALE_ALLOW,
        ] {
            let (id, doc) = rules::rule_doc(rule);
            assert!(id.starts_with("HL"), "{rule}: id {id}");
            assert_ne!(id, "HL999", "{rule} is missing a dedicated id");
            assert!(doc.starts_with("DESIGN.md#"), "{rule}: doc {doc}");
            assert!(seen.insert(id), "duplicate doc id {id}");
        }
    }
}
