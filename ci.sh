#!/usr/bin/env bash
# Local CI: the checks every change must pass before landing.
#
#   ./ci.sh          # fmt + clippy + tests
#
# All dependencies are vendored (see vendor/), so this runs fully offline.
set -euo pipefail
cd "$(dirname "$0")"

echo "== cargo fmt --check =="
cargo fmt --check

echo "== cargo clippy (deny warnings) =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== cargo test =="
cargo test --workspace -q

echo "== benches compile =="
cargo bench --workspace --no-run -q

echo "== bench-planning smoke test =="
out="$(mktemp -d)"
cargo run --release -q -p harl-bench --bin harl-cli -- \
    bench-planning --quick --json --out "$out/BENCH_planning.json"
python3 - "$out/BENCH_planning.json" <<'PY'
import json, sys
doc = json.load(open(sys.argv[1]))
phases = doc["phases"]
for phase in ("single_region", "whole_file_64", "online_replan"):
    assert phases[phase]["wall_s"] > 0, phase
print("bench-planning JSON schema OK")
PY
rm -rf "$out"

echo "CI OK"
