#!/usr/bin/env bash
# Local CI: the checks every change must pass before landing.
#
#   ./ci.sh          # fmt + clippy + tests
#
# All dependencies are vendored (see vendor/), so this runs fully offline.
set -euo pipefail
cd "$(dirname "$0")"

echo "== cargo fmt --check =="
cargo fmt --check

echo "== harl-lint =="
cargo run -q -p harl-lint -- --root .

echo "== cargo clippy (deny warnings) =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== cargo test =="
cargo test --workspace -q

echo "== benches compile =="
cargo bench --workspace --no-run -q

echo "== cargo doc (deny warnings) =="
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps -q

echo "== scenario smoke test =="
out="$(mktemp -d)"
cargo run --release -q -p harl-bench --bin harl-cli -- \
    run --scenario scenarios/smoke.json --out "$out/smoke.json"
if ! diff -u scenarios/smoke.golden.json "$out/smoke.json"; then
    echo "scenario smoke report diverged from scenarios/smoke.golden.json" >&2
    echo "(if the change is intentional, regenerate the golden with the command above)" >&2
    exit 1
fi
echo "scenario report matches golden"
rm -rf "$out"

echo "== metrics report golden =="
out="$(mktemp -d)"
cargo run --release -q -p harl-bench --bin harl-cli -- \
    run --scenario scenarios/smoke.json --sample-ms 1 \
    --metrics-out "$out/metrics.jsonl" --out "$out/smoke.json" >/dev/null
cargo run --release -q -p harl-bench --bin harl-cli -- \
    report "$out/metrics.jsonl" > "$out/report.txt"
if ! diff -u scenarios/smoke.report.golden.txt "$out/report.txt"; then
    echo "rendered metrics report diverged from scenarios/smoke.report.golden.txt" >&2
    echo "(if the change is intentional, regenerate the golden with the commands above)" >&2
    exit 1
fi
echo "metrics report matches golden"
rm -rf "$out"

echo "== bench-planning smoke test =="
out="$(mktemp -d)"
cargo run --release -q -p harl-bench --bin harl-cli -- \
    bench-planning --quick --json --out "$out/BENCH_planning.json"
python3 - "$out/BENCH_planning.json" <<'PY'
import json, sys
doc = json.load(open(sys.argv[1]))
phases = doc["phases"]
for phase in ("single_region", "whole_file_64", "online_replan"):
    assert phases[phase]["wall_s"] > 0, phase
print("bench-planning JSON schema OK")
PY
rm -rf "$out"

echo "== three-tier scenario golden =="
out="$(mktemp -d)"
cargo run --release -q -p harl-bench --bin harl-cli -- \
    run --scenario scenarios/three_tier.json --out "$out/three_tier.json"
if ! diff -u scenarios/three_tier.golden.json "$out/three_tier.json"; then
    echo "three-tier scenario report diverged from scenarios/three_tier.golden.json" >&2
    echo "(if the change is intentional, regenerate the golden with the command above)" >&2
    exit 1
fi
python3 - scenarios/three_tier.golden.json <<'PY'
import json, sys
doc = json.load(open(sys.argv[1]))
assert doc["plan_cost_usd"] > 0, "three-tier plan must carry a non-zero dollar cost"
print("three-tier report matches golden (plan_cost_usd = %.6f)" % doc["plan_cost_usd"])
PY
rm -rf "$out"

echo "== bench-planning regression guard =="
# Full-scale rerun of the three planning phases; fails if any phase's
# throughput drops more than 20% below the committed BENCH_planning.json
# baseline (or the per-phase work totals drift, meaning the baseline is
# stale).
cargo run --release -q -p harl-bench --bin harl-cli -- \
    bench-planning --guard BENCH_planning.json

echo "== bench-sim smoke test =="
out="$(mktemp -d)"
cargo run --release -q -p harl-bench --bin harl-cli -- \
    bench-sim --quick --json --out "$out/BENCH_sim.json"
python3 - "$out/BENCH_sim.json" <<'PY'
import json, sys
doc = json.load(open(sys.argv[1]))
assert doc["schema"] == "harl.bench.sim.v2", doc["schema"]
tiers = doc["tiers"]
assert [t["servers"] for t in tiers] == [8, 256, 1024, 4096], tiers
requests = [t["requests"] for t in tiers]
assert len(set(requests)) > 1, f"request axis must vary across tiers: {requests}"
for t in tiers:
    assert t["events"] > 0 and t["events_per_s"] > 0, t
    assert t["requests_completed"] == t["requests"], t
assert "max_recorder_overhead_pct" in doc
print("bench-sim JSON schema OK")
PY
rm -rf "$out"

echo "== bench-sim regression guard =="
# Full-scale noop-only rerun of every tier; fails if events/s at any tier
# drops more than 20% below the committed BENCH_sim.json baseline (or if
# the deterministic event counts drift, which means the baseline is stale).
cargo run --release -q -p harl-bench --bin harl-cli -- \
    bench-sim --guard BENCH_sim.json

echo "== multiapp serve scenario golden =="
out="$(mktemp -d)"
cargo run --release -q -p harl-bench --bin harl-cli -- \
    serve --scenario scenarios/multiapp.json --out "$out/multiapp.json"
if ! diff -u scenarios/multiapp.golden.json "$out/multiapp.json"; then
    echo "multiapp serve report diverged from scenarios/multiapp.golden.json" >&2
    echo "(if the change is intentional, regenerate the golden with the command above)" >&2
    exit 1
fi
python3 - scenarios/multiapp.golden.json <<'PY'
import json, sys
doc = json.load(open(sys.argv[1]))
assert doc["cache_hit_rate"] > 0, "multiapp replay must hit the plan cache"
assert doc["plans_hit"] + doc["plans_stale"] + doc["plans_miss"] == doc["jobs"], doc
assert doc["batch_applied"] + doc["batch_coalesced"] == doc["batch_enqueued"], doc
print("multiapp report matches golden (cache hit rate = %.1f%%)"
      % (100 * doc["cache_hit_rate"]))
PY
rm -rf "$out"

echo "== determinism audit (fast tier) =="
# Re-runs the smoke and multiapp scenarios at 1 and 8 planner threads,
# hashes every artifact (report JSON + wall-clock-stripped metrics JSONL)
# and fails on any byte difference across thread budgets or against the
# committed goldens. The full tier (all three scenarios, threads 1/2/8,
# two seeds) is `harl-cli audit-determinism` without --fast.
cargo run --release -q -p harl-bench --bin harl-cli -- \
    audit-determinism --fast

echo "== bench-serve smoke test =="
out="$(mktemp -d)"
cargo run --release -q -p harl-bench --bin harl-cli -- \
    bench-serve --quick --json --out "$out/BENCH_serve.json"
python3 - "$out/BENCH_serve.json" <<'PY'
import json, sys
doc = json.load(open(sys.argv[1]))
assert doc["schema"] == "harl.bench.serve.v1", doc["schema"]
tiers = doc["tiers"]
assert [t["tenants"] for t in tiers] == [16, 256, 2048], tiers
for t in tiers:
    assert t["submissions"] > 0, t
    assert t["warm"]["plans_per_s"] > 0 and t["cold"]["plans_per_s"] > 0, t
    assert t["warm"]["p50_ms"] <= t["warm"]["p99_ms"], t
assert tiers[0]["warm"]["cache_hit_rate"] > 0.5, \
    "repeated-workload tier must mostly hit the cache"
print("bench-serve JSON schema OK")
PY
rm -rf "$out"

echo "== bench-serve regression guard =="
# Full-scale rerun of all three tenant tiers; fails if any deterministic
# quantity (submission counts, region reuse split, cache hit rate) drifts
# from the committed BENCH_serve.json baseline, meaning serve behaviour
# changed and the baseline is stale. Wall-clock plans/s is reported for
# information only (machine-dependent; a >20% drop prints a warning but
# never fails CI).
cargo run --release -q -p harl-bench --bin harl-cli -- \
    bench-serve --guard BENCH_serve.json

echo "CI OK"
