#!/usr/bin/env bash
# Local CI: the checks every change must pass before landing.
#
#   ./ci.sh          # fmt + clippy + tests
#
# All dependencies are vendored (see vendor/), so this runs fully offline.
set -euo pipefail
cd "$(dirname "$0")"

echo "== cargo fmt --check =="
cargo fmt --check

echo "== cargo clippy (deny warnings) =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== cargo test =="
cargo test --workspace -q

echo "CI OK"
