//! End-to-end integration tests across all workspace crates: the full
//! trace → analyse → place → simulate pipeline.

use harl_repro::prelude::*;

const QUICK_FILE: u64 = 256 << 20; // 256 MiB keeps each sim < 1s

fn ior(op: OpKind, processes: usize, request_size: u64) -> Workload {
    IorConfig {
        processes,
        request_size,
        file_size: QUICK_FILE,
        op,
        order: AccessOrder::Random,
        seed: 42,
    }
    .build()
}

fn harl(cluster: &ClusterConfig) -> HarlPolicy {
    HarlPolicy::new(CostModelParams::from_cluster_calibrated(
        cluster,
        &CalibrationConfig::default(),
    ))
}

#[test]
fn harl_beats_default_for_reads() {
    let cluster = ClusterConfig::paper_default();
    let w = ior(OpKind::Read, 16, 512 * KIB);
    let ccfg = CollectiveConfig::default();
    let (_, h) = trace_plan_run(&SimContext::new(), &cluster, &harl(&cluster), &w, &ccfg);
    let (_, d) = trace_plan_run(
        &SimContext::new(),
        &cluster,
        &FixedPolicy::new(64 * KIB),
        &w,
        &ccfg,
    );
    let gain = h.throughput_mib_s() / d.throughput_mib_s();
    assert!(
        gain > 1.3,
        "expected a solid read win, got {:.2}x ({:.0} vs {:.0} MiB/s)",
        gain,
        h.throughput_mib_s(),
        d.throughput_mib_s()
    );
}

#[test]
fn harl_beats_default_for_writes() {
    let cluster = ClusterConfig::paper_default();
    let w = ior(OpKind::Write, 16, 512 * KIB);
    let ccfg = CollectiveConfig::default();
    let (_, h) = trace_plan_run(&SimContext::new(), &cluster, &harl(&cluster), &w, &ccfg);
    let (_, d) = trace_plan_run(
        &SimContext::new(),
        &cluster,
        &FixedPolicy::new(64 * KIB),
        &w,
        &ccfg,
    );
    assert!(h.throughput_mib_s() > 1.3 * d.throughput_mib_s());
}

#[test]
fn harl_at_least_matches_every_fixed_stripe() {
    let cluster = ClusterConfig::paper_default();
    let ccfg = CollectiveConfig::default();
    for &req in &[128 * KIB, 512 * KIB, 1024 * KIB] {
        let w = ior(OpKind::Read, 16, req);
        let (_, h) = trace_plan_run(&SimContext::new(), &cluster, &harl(&cluster), &w, &ccfg);
        for &stripe in &[16 * KIB, 64 * KIB, 256 * KIB, 1024 * KIB, 2048 * KIB] {
            let (_, f) = trace_plan_run(
                &SimContext::new(),
                &cluster,
                &FixedPolicy::new(stripe),
                &w,
                &ccfg,
            );
            assert!(
                h.throughput_mib_s() >= 0.98 * f.throughput_mib_s(),
                "HARL ({:.0}) lost to fixed {} ({:.0}) at request size {}",
                h.throughput_mib_s(),
                ByteSize(stripe),
                f.throughput_mib_s(),
                ByteSize(req)
            );
        }
    }
}

#[test]
fn end_to_end_is_deterministic() {
    let cluster = ClusterConfig::paper_default();
    let w = ior(OpKind::Read, 8, 512 * KIB);
    let ccfg = CollectiveConfig::default();
    let (rst1, r1) = trace_plan_run(&SimContext::new(), &cluster, &harl(&cluster), &w, &ccfg);
    let (rst2, r2) = trace_plan_run(&SimContext::new(), &cluster, &harl(&cluster), &w, &ccfg);
    assert_eq!(rst1, rst2);
    assert_eq!(r1.makespan, r2.makespan);
    assert_eq!(r1.bytes_read, r2.bytes_read);
}

#[test]
fn bytes_are_conserved_through_the_stack() {
    // Workload bytes == trace bytes == simulated bytes, through region
    // splitting and placement.
    let cluster = ClusterConfig::paper_default();
    let w = ior(OpKind::Write, 16, 512 * KIB);
    let (expected_read, expected_written) = w.total_bytes();
    let ccfg = CollectiveConfig::default();

    let trace = collect_trace_lowered(&cluster, &w, &ccfg);
    let (t_read, t_written) = trace.total_bytes();
    assert_eq!((t_read, t_written), (expected_read, expected_written));

    let (_, report) = trace_plan_run(&SimContext::new(), &cluster, &harl(&cluster), &w, &ccfg);
    assert_eq!(report.bytes_read, expected_read);
    assert_eq!(report.bytes_written, expected_written);

    // Per-server device bytes also add up to the total moved.
    let device_bytes: u64 = report.servers.iter().map(|s| s.bytes).sum();
    assert_eq!(device_bytes, expected_read + expected_written);
}

#[test]
fn btio_pipeline_with_collectives() {
    let cluster = ClusterConfig::paper_default();
    let cfg = BtioConfig {
        grid: 32,
        steps: 4,
        write_interval: 2,
        processes: 4,
        compute_per_step: SimNanos::from_millis(1),
    };
    let w = cfg.build();
    let ccfg = CollectiveConfig::default();
    let (_, h) = trace_plan_run(&SimContext::new(), &cluster, &harl(&cluster), &w, &ccfg);
    let (_, d) = trace_plan_run(
        &SimContext::new(),
        &cluster,
        &FixedPolicy::new(64 * KIB),
        &w,
        &ccfg,
    );
    assert_eq!(h.bytes_written, cfg.file_size());
    assert_eq!(h.bytes_read, cfg.file_size());
    assert!(
        h.makespan <= d.makespan,
        "HARL BTIO {h} should not lose to default {d}",
        h = h.makespan,
        d = d.makespan
    );
}

#[test]
fn replayed_trace_reproduces_workload_behaviour() {
    let cluster = ClusterConfig::paper_default();
    let w = ior(OpKind::Read, 4, 256 * KIB);
    let ccfg = CollectiveConfig::default();
    let trace = collect_trace(&w);
    let replayed = replay(&trace);
    let rst = RegionStripeTable::single(QUICK_FILE, 64 * KIB, 64 * KIB);
    let a = run_workload(&SimContext::new(), &cluster, &rst, &w, &ccfg);
    let b = run_workload(&SimContext::new(), &cluster, &rst, &replayed, &ccfg);
    assert_eq!(a.bytes_read, b.bytes_read);
    assert_eq!(
        a.makespan, b.makespan,
        "replay must be behaviourally identical"
    );
}

#[test]
fn rst_artifacts_round_trip_and_still_run() {
    let cluster = ClusterConfig::paper_default();
    let w = ior(OpKind::Read, 8, 128 * KIB);
    let ccfg = CollectiveConfig::default();
    let (rst, before) = trace_plan_run(&SimContext::new(), &cluster, &harl(&cluster), &w, &ccfg);

    let dir = std::env::temp_dir().join("harl-integration");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("pipeline.rst.json");
    rst.save_to_path(&path).unwrap();
    let reloaded = RegionStripeTable::load_from_path(&path).unwrap();
    std::fs::remove_file(&path).ok();
    assert_eq!(reloaded, rst);

    let after = run_workload(&SimContext::new(), &cluster, &reloaded, &w, &ccfg);
    assert_eq!(after.makespan, before.makespan);
}

#[test]
fn zero_h_regions_keep_hservers_idle() {
    // A plan that stores a region on SServers only must not touch HServers
    // when that region is accessed.
    let cluster = ClusterConfig::paper_default();
    let rst = RegionStripeTable::single(QUICK_FILE, 0, 64 * KIB);
    let w = ior(OpKind::Read, 8, 128 * KIB);
    let report = run_workload(
        &SimContext::new(),
        &cluster,
        &rst,
        &w,
        &CollectiveConfig::default(),
    );
    for server in &report.servers[..6] {
        assert_eq!(server.disk_jobs, 0, "HServer {} was used", server.id);
        assert_eq!(server.bytes, 0);
    }
    assert!(report.servers[6].bytes > 0);
}

#[test]
fn mixed_read_write_workload_runs() {
    let cluster = ClusterConfig::paper_default();
    let mut w = Workload::with_ranks(4);
    for (r, prog) in w.ranks.iter_mut().enumerate() {
        let base = r as u64 * (QUICK_FILE / 4);
        for i in 0..16u64 {
            prog.push_request(LogicalRequest::write(base + i * 512 * KIB, 512 * KIB));
        }
        for i in 0..16u64 {
            prog.push_request(LogicalRequest::read(base + i * 512 * KIB, 512 * KIB));
        }
    }
    let ccfg = CollectiveConfig::default();
    let (rst, report) = trace_plan_run(&SimContext::new(), &cluster, &harl(&cluster), &w, &ccfg);
    assert!(!rst.is_empty());
    assert_eq!(report.bytes_read, report.bytes_written);
    assert!(report.read_latency.count() > 0 && report.write_latency.count() > 0);
}

#[test]
fn k_profile_cluster_simulates() {
    // Three classes end to end at the pfs level.
    let cluster = ClusterConfig::hybrid(4, 2).with_extra_class(2, nvme_2020_preset());
    let layout = FileLayout::custom(
        (0..8)
            .map(|id| (id, if id < 4 { 16 * KIB } else { 64 * KIB }))
            .collect(),
    );
    let mut prog = ClientProgram::new();
    for i in 0..32u64 {
        prog.push_request(PhysRequest::read(0, i * 512 * KIB, 512 * KIB));
    }
    let report = simulate(&SimContext::new(), &cluster, &[layout], &[prog]);
    assert_eq!(report.bytes_read, 32 * 512 * KIB);
    assert!(report.servers.iter().all(|s| s.bytes > 0));
}
