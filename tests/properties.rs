//! Property-based tests (proptest) on the core invariants across crates.

use harl_repro::harl::{case_a_params, server_loads};
use harl_repro::prelude::*;
use proptest::prelude::*;

const STEP: u64 = 4096;

prop_compose! {
    /// A two-class stripe pair with at least one positive width, on the
    /// 4 KiB grid, up to 2 MiB.
    fn stripe_pair()(h in 0u64..=512, s in 0u64..=512) -> (u64, u64) {
        if h == 0 && s == 0 {
            (STEP, STEP)
        } else {
            (h * STEP, s * STEP)
        }
    }
}

proptest! {
    /// GroupLayout splits conserve every byte of every request.
    #[test]
    fn split_conserves_bytes(
        (h, s) in stripe_pair(),
        offset in 0u64..(1 << 34),
        len in 1u64..(8 << 20),
        m in 1usize..8,
        n in 1usize..8,
    ) {
        let cluster = ClusterConfig::hybrid(m, n);
        let layout = FileLayout::two_class(&cluster, h, s);
        let pieces = layout.split(offset, len);
        let total: u64 = pieces.iter().map(|&(_, b)| b).sum();
        prop_assert_eq!(total, len);
        // No server appears twice and all are valid ids.
        let mut ids: Vec<_> = pieces.iter().map(|&(id, _)| id).collect();
        let before = ids.len();
        ids.sort_unstable();
        ids.dedup();
        prop_assert_eq!(ids.len(), before);
        prop_assert!(ids.iter().all(|&id| id < cluster.server_count()));
    }

    /// The cost model's exact loads conserve bytes and bound s_m/s_n.
    #[test]
    fn server_loads_sane(
        (h, s) in stripe_pair(),
        offset in 0u64..(1 << 34),
        size in 1u64..(8 << 20),
    ) {
        let loads = server_loads(offset, size, 6, h, 2, s);
        prop_assert!(loads.s_m <= size);
        prop_assert!(loads.s_n <= size);
        prop_assert!(loads.m <= 6);
        prop_assert!(loads.n <= 2);
        // Any byte must land somewhere.
        prop_assert!(loads.m + loads.n > 0);
        // Zero-width classes take nothing.
        if h == 0 { prop_assert_eq!((loads.s_m, loads.m), (0, 0)); }
        if s == 0 { prop_assert_eq!((loads.s_n, loads.n), (0, 0)); }
    }

    /// Paper Fig. 5 case-(a) table equals exact geometry on its valid
    /// domain (Δr = 0 rows, and Δr >= 1 with n_b >= n_e).
    #[test]
    fn case_a_table_matches_exact_on_domain(
        h in 1u64..=64,
        s in 1u64..=64,
        offset in 0u64..(1 << 28),
        size in 1u64..(4 << 20),
    ) {
        let (h, s) = (h * STEP, s * STEP);
        if let Some(table) = case_a_params(offset, size, 6, h, 2, s) {
            let exact = server_loads(offset, size, 6, h, 2, s);
            let group = 6 * h + 2 * s;
            let d_r = (offset + size) / group - offset / group;
            let n_b = (offset % group) / h;
            let n_e = ((offset + size) % group) / h;
            if d_r == 0 || (d_r == 1 && n_b >= n_e) {
                prop_assert_eq!(table, exact,
                    "table diverged inside its valid domain (dr={}, nb={}, ne={})",
                    d_r, n_b, n_e);
            } else {
                // Documented divergences outside the exact domain: the
                // table may under-count s_m (n_b < n_e: the beginning
                // server holds s_b + dr*h) and m (dr >= 2 with n_b > n_e:
                // a full middle group touches all M HServers).
                prop_assert!(table.s_m <= exact.s_m);
                prop_assert!(table.m <= exact.m);
                prop_assert_eq!(table.s_n, exact.s_n);
                prop_assert_eq!(table.n, exact.n);
            }
        }
    }

    /// Cost is non-negative, zero only for empty requests, and monotone in
    /// request size under a fixed layout.
    #[test]
    fn cost_nonnegative_and_monotone(
        (h, s) in stripe_pair(),
        offset in 0u64..(1 << 30),
        size in 1u64..(4 << 20),
        op_is_read in any::<bool>(),
    ) {
        let model = CostModelParams::from_cluster(&ClusterConfig::paper_default());
        let op = if op_is_read { OpKind::Read } else { OpKind::Write };
        prop_assert_eq!(model.request_cost(offset, 0, op, h, s), 0.0);
        let c1 = model.request_cost(offset, size, op, h, s);
        let c2 = model.request_cost(offset, size * 2, op, h, s);
        prop_assert!(c1 > 0.0);
        prop_assert!(c2 >= c1, "doubling the size reduced cost: {} -> {}", c1, c2);
    }

    /// Region division tiles the file exactly for arbitrary traces.
    #[test]
    fn region_division_tiles_file(
        sizes in prop::collection::vec(1u64..=512, 1..64),
        file_slack in 0u64..(64 << 20),
    ) {
        let mut offset = 0;
        let mut records = Vec::with_capacity(sizes.len());
        for (i, &s) in sizes.iter().enumerate() {
            let size = s * STEP;
            records.push(TraceRecord {
                rank: (i % 4) as u32,
                fd: 0,
                op: if i % 3 == 0 { OpKind::Write } else { OpKind::Read },
                offset,
                size,
                timestamp: SimNanos::from_nanos(i as u64),
            });
            offset += size;
        }
        let file_size = offset + file_slack;
        let regions = harl_repro::harl::divide_regions(
            &records, file_size, &RegionDivisionConfig::default());
        prop_assert!(harl_repro::harl::region::regions_tile_file(&regions, file_size));
        // Request index ranges partition the trace.
        prop_assert_eq!(regions[0].first_request, 0);
        for w in regions.windows(2) {
            prop_assert_eq!(w[0].last_request, w[1].first_request);
        }
        prop_assert_eq!(regions.last().unwrap().last_request, records.len());
    }

    /// RST request splitting covers the request exactly, in order.
    #[test]
    fn rst_split_covers_request(
        lens in prop::collection::vec(1u64..=1024, 1..16),
        offset_frac in 0.0f64..1.0,
        len in 1u64..(16 << 20),
    ) {
        let entries: Vec<RstEntry> = {
            let mut out = Vec::new();
            let mut off = 0;
            for (i, &l) in lens.iter().enumerate() {
                let region_len = l * STEP * 256;
                out.push(RstEntry::two(
                    off,
                    region_len,
                    ((i as u64 % 4) * 16) * 1024,
                    64 * 1024,
                ));
                off += region_len;
            }
            out
        };
        let rst = RegionStripeTable::new(entries);
        let offset = (rst.file_size() as f64 * offset_frac) as u64;
        let pieces = rst.split_request(offset, len);
        let total: u64 = pieces.iter().map(|&(_, _, l)| l).sum();
        prop_assert_eq!(total, len);
        // Pieces are contiguous in logical space.
        let mut pos = offset;
        for &(region, rel, plen) in &pieces {
            let entry = &rst.entries()[region];
            prop_assert_eq!(entry.offset + rel, pos);
            pos += plen;
        }
    }

    /// The simulator conserves bytes for arbitrary request mixes and the
    /// makespan never precedes any request's completion.
    #[test]
    fn simulation_conserves_bytes(
        reqs in prop::collection::vec(
            (0u64..(64 << 20), 1u64..(2 << 20), any::<bool>()), 1..24),
        stripe in 1u64..=64,
    ) {
        let cluster = ClusterConfig::paper_default();
        let layout = FileLayout::fixed(&cluster, stripe * STEP);
        let mut read = 0;
        let mut written = 0;
        let mut prog = ClientProgram::new();
        for &(offset, size, is_read) in &reqs {
            if is_read {
                read += size;
                prog.push_request(PhysRequest::read(0, offset, size));
            } else {
                written += size;
                prog.push_request(PhysRequest::write(0, offset, size));
            }
        }
        let report = simulate(&SimContext::new(), &cluster, &[layout], &[prog]);
        prop_assert_eq!(report.bytes_read, read);
        prop_assert_eq!(report.bytes_written, written);
        prop_assert_eq!(report.requests_completed as usize, reqs.len());
        let device_bytes: u64 = report.servers.iter().map(|s| s.bytes).sum();
        prop_assert_eq!(device_bytes, read + written);
    }

    /// Trace JSON round-trips for arbitrary records.
    #[test]
    fn trace_round_trips(
        recs in prop::collection::vec(
            (0u32..64, 0u64..(1 << 40), 0u64..(1 << 30), any::<bool>()), 0..64),
    ) {
        let trace = Trace::from_records(
            recs.iter()
                .enumerate()
                .map(|(i, &(rank, offset, size, is_read))| TraceRecord {
                    rank,
                    fd: 3,
                    op: if is_read { OpKind::Read } else { OpKind::Write },
                    offset,
                    size,
                    timestamp: SimNanos::from_nanos(i as u64),
                })
                .collect(),
        );
        let mut buf = Vec::new();
        trace.save(&mut buf).unwrap();
        let back = Trace::load(&buf[..]).unwrap();
        prop_assert_eq!(trace, back);
    }

    /// Merging adjacent RST rows never changes lookup results.
    #[test]
    fn rst_merge_preserves_lookup(
        lens in prop::collection::vec(1u64..=64, 2..12),
        same_mask in prop::collection::vec(any::<bool>(), 2..12),
        probe_frac in 0.0f64..1.0,
    ) {
        let mut entries = Vec::new();
        let mut off = 0;
        for (i, &l) in lens.iter().enumerate() {
            let same = same_mask.get(i).copied().unwrap_or(false);
            let (h, s) = if same { (16 * 1024, 64 * 1024) } else {
                (((i as u64 % 3) + 1) * 16 * 1024, 64 * 1024)
            };
            let len = l * (1 << 20);
            entries.push(RstEntry::two(off, len, h, s));
            off += len;
        }
        let rst = RegionStripeTable::new(entries);
        let mut merged = rst.clone();
        merged.merge_adjacent();
        prop_assert!(merged.len() <= rst.len());
        prop_assert_eq!(merged.file_size(), rst.file_size());
        let probe = (rst.file_size() as f64 * probe_frac) as u64;
        let a = rst.lookup(probe);
        let b = merged.lookup(probe);
        prop_assert_eq!((a.h(), a.s()), (b.h(), b.s()));
    }
}
