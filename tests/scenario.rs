//! Scenario spec tests: serde round-trips, validation rejections, and the
//! golden determinism guarantee (same scenario + seed ⇒ byte-identical
//! report JSON, independent of the planner thread budget).

use harl_repro::prelude::*;

fn smoke_scenario() -> Scenario {
    Scenario::new(WorkloadSpec::Ior(IorConfig {
        processes: 8,
        request_size: 256 * 1024,
        file_size: 64 << 20,
        op: OpKind::Read,
        order: AccessOrder::Random,
        seed: 42,
    }))
    .named("test-smoke")
    .with_seed(7)
}

#[test]
fn scenario_round_trips_through_json() {
    let scenarios = vec![
        smoke_scenario(),
        Scenario::new(WorkloadSpec::Btio(BtioConfig {
            grid: 64,
            steps: 2,
            ..BtioConfig::paper_default(16)
        }))
        .with_policy(PolicySpec::Fixed(64 * 1024))
        .with_cluster(ClusterSpec::Hybrid(HybridCluster {
            hservers: 4,
            sservers: 2,
            compute_nodes: Some(8),
            seed: Some(3),
        })),
        smoke_scenario()
            .with_policy(PolicySpec::Segment(1 << 20))
            .with_fault(FaultSpec {
                server: 6,
                slowdown: 2.5,
                from_s: 0.5,
                until_s: Some(1.5),
            })
            .with_threads(4),
        Scenario::new(WorkloadSpec::ReplayTrace("trace.jsonl".into()))
            .with_policy(PolicySpec::ServerLevel),
    ];
    for s in scenarios {
        let json = s.to_json_pretty();
        let back = Scenario::from_json(&json)
            .unwrap_or_else(|e| panic!("round-trip failed for {json}: {e}"));
        assert_eq!(back, s);
        // A second trip must be textually stable too.
        assert_eq!(back.to_json_pretty(), json);
    }
}

#[test]
fn scenario_defaults_apply_on_sparse_json() {
    // Only the workload is mandatory; everything else defaults.
    let json = r#"{"workload": {"Ior": {
        "processes": 2, "request_size": 65536, "file_size": 1048576,
        "op": "Read", "order": "Sequential", "seed": 1}}}"#;
    let s = Scenario::from_json(json).expect("sparse scenario parses");
    assert_eq!(s.cluster, ClusterSpec::Paper);
    assert_eq!(s.policy, PolicySpec::Harl);
    assert!(s.faults.is_empty());
    assert_eq!(s.seed, None);
    assert_eq!(s.threads, None);
}

#[test]
fn validation_rejects_impossible_scenarios() {
    let base = smoke_scenario();

    let cases: Vec<(Scenario, &str)> = vec![
        (
            base.clone()
                .with_cluster(ClusterSpec::Hybrid(HybridCluster {
                    hservers: 0,
                    sservers: 0,
                    compute_nodes: None,
                    seed: None,
                })),
            "at least one server",
        ),
        (
            Scenario::new(WorkloadSpec::Ior(IorConfig {
                processes: 0,
                request_size: 4096,
                file_size: 1 << 20,
                op: OpKind::Read,
                order: AccessOrder::Sequential,
                seed: 1,
            })),
            "at least one process",
        ),
        (
            Scenario::new(WorkloadSpec::Ior(IorConfig {
                processes: 1,
                request_size: 0,
                file_size: 1 << 20,
                op: OpKind::Read,
                order: AccessOrder::Sequential,
                seed: 1,
            })),
            "request_size",
        ),
        (base.clone().with_policy(PolicySpec::Fixed(0)), "stripe"),
        (
            base.clone().with_fault(FaultSpec {
                server: 999,
                slowdown: 2.0,
                from_s: 0.0,
                until_s: None,
            }),
            "server 999",
        ),
        (
            base.clone().with_fault(FaultSpec {
                server: 0,
                slowdown: -1.0,
                from_s: 0.0,
                until_s: None,
            }),
            "slowdown",
        ),
        (
            base.clone().with_fault(FaultSpec {
                server: 0,
                slowdown: 2.0,
                from_s: 5.0,
                until_s: Some(1.0),
            }),
            "inverted",
        ),
        (base.clone().with_threads(0), "threads"),
        (
            Scenario::new(WorkloadSpec::ReplayTrace(String::new())),
            "trace file path",
        ),
    ];
    for (scenario, needle) in cases {
        let err = scenario.validate().expect_err("must be rejected");
        assert!(
            err.contains(needle),
            "error {err:?} does not mention {needle:?}"
        );
        // `run` must refuse the same way.
        assert!(scenario.run(&SimContext::new()).is_err());
    }
}

#[test]
fn golden_determinism_across_runs_and_thread_budgets() {
    // The determinism contract behind the CI smoke stage: the same
    // scenario file and seed produce byte-identical report JSON on every
    // run, whatever the planner thread budget.
    let scenario = smoke_scenario();
    let golden = scenario
        .run(&SimContext::new())
        .expect("scenario runs")
        .to_json_pretty();
    for threads in [1usize, 4] {
        for _ in 0..2 {
            let json = scenario
                .clone()
                .with_threads(threads)
                .run(&SimContext::new())
                .expect("scenario runs")
                .to_json_pretty();
            assert_eq!(
                json, golden,
                "report JSON diverged at threads={threads} — determinism broken"
            );
        }
    }
}

#[test]
fn context_base_overrides_win() {
    let scenario = smoke_scenario().with_threads(8); // scenario says 8 threads, seed 7
    let base = SimContext::new().with_seed(99).with_threads(2);
    let ctx = scenario.context(&base);
    assert_eq!(ctx.seed, Some(99), "caller-pinned seed wins");
    assert_eq!(ctx.threads, Some(2), "caller-pinned threads win");

    let ctx = scenario.context(&SimContext::new());
    assert_eq!(ctx.seed, Some(7), "scenario seed applies when unpinned");
    assert_eq!(ctx.threads, Some(8));
}

#[test]
fn scenario_faults_reach_the_simulator() {
    // A permanent straggler on every server must strictly slow the run.
    let scenario = smoke_scenario();
    let healthy = scenario.run(&SimContext::new()).expect("healthy run");
    let mut degraded_spec = scenario.clone();
    for server in 0..degraded_spec.build_cluster().server_count() {
        degraded_spec = degraded_spec.with_fault(FaultSpec {
            server,
            slowdown: 8.0,
            from_s: 0.0,
            until_s: None,
        });
    }
    let degraded = degraded_spec.run(&SimContext::new()).expect("degraded run");
    assert!(
        degraded.makespan_ns > healthy.makespan_ns,
        "8x slowdown on every server must increase makespan ({} vs {})",
        degraded.makespan_ns,
        healthy.makespan_ns
    );
}

#[test]
fn report_round_trips_through_json() {
    let report = smoke_scenario().run(&SimContext::new()).expect("runs");
    let json = report.to_json_pretty();
    let back = ScenarioReport::from_json(&json).expect("parses");
    assert_eq!(back, report);
}

fn three_tier_scenario() -> Scenario {
    Scenario::new(WorkloadSpec::Ior(IorConfig {
        processes: 4,
        request_size: 256 * 1024,
        file_size: 16 << 20,
        op: OpKind::Read,
        order: AccessOrder::Sequential,
        seed: 42,
    }))
    .named("test-three-tier")
    .with_cluster(ClusterSpec::Tiered(TieredCluster {
        tiers: vec![
            TierSpec {
                count: 4,
                preset: "hdd-2015".into(),
            },
            TierSpec {
                count: 2,
                preset: "ssd-2015".into(),
            },
            TierSpec {
                count: 2,
                preset: "object-store".into(),
            },
        ],
        compute_nodes: None,
        seed: None,
    }))
    .with_policy(PolicySpec::Fixed(256 * 1024))
    .with_seed(7)
}

#[test]
fn tiered_cluster_round_trips_and_validates() {
    let scenario = three_tier_scenario();
    let json = scenario.to_json_pretty();
    let back = Scenario::from_json(&json).expect("tiered scenario parses");
    assert_eq!(back, scenario);
    scenario.validate().expect("tiered scenario is valid");

    // An unknown preset and an empty tier list are both rejected.
    let bad = scenario
        .clone()
        .with_cluster(ClusterSpec::Tiered(TieredCluster {
            tiers: vec![TierSpec {
                count: 2,
                preset: "floppy-1995".into(),
            }],
            compute_nodes: None,
            seed: None,
        }));
    let err = bad.validate().expect_err("unknown preset rejected");
    assert!(err.contains("floppy-1995"), "{err}");
    let empty = scenario.with_cluster(ClusterSpec::Tiered(TieredCluster {
        tiers: vec![],
        compute_nodes: None,
        seed: None,
    }));
    assert!(empty.validate().is_err(), "empty tier list rejected");
}

#[test]
fn priced_tier_reports_nonzero_dollar_cost() {
    let report = three_tier_scenario()
        .run(&SimContext::new())
        .expect("three-tier scenario runs");
    let usd = report.plan_cost_usd.expect("priced tier yields a bill");
    assert!(usd > 0.0, "object-store tier holds bytes, bill must be > 0");
    // The dollar field round-trips through the report JSON.
    let back = ScenarioReport::from_json(&report.to_json_pretty()).expect("parses");
    assert_eq!(back, report);
    // An all-free cluster omits the field entirely (golden compatibility).
    let free = smoke_scenario().run(&SimContext::new()).expect("runs");
    assert_eq!(free.plan_cost_usd, None);
    assert!(!free.to_json_pretty().contains("plan_cost_usd"));
}
