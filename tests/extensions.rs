//! Integration tests for the paper's discussion/future-work extensions:
//! on-line adaptation, multi-application sharing, space balancing and the
//! K-profile model — exercised end to end through the public API.

use harl_repro::harl::{OnlineConfig, OnlineMonitor};
use harl_repro::middleware::run_shared;
use harl_repro::prelude::*;

const FILE: u64 = 256 << 20;

fn ior(op: OpKind, request_size: u64, seed: u64) -> Workload {
    IorConfig {
        processes: 8,
        request_size,
        file_size: FILE,
        op,
        order: AccessOrder::Random,
        seed,
    }
    .build()
}

#[test]
fn online_adaptation_converges_to_fresh_offline_plan() {
    // Plan for 512 KiB requests, then the application switches to 128 KiB.
    // The monitor must detect the drift and converge to the same layout a
    // fresh offline HARL analysis of the new pattern would choose — and
    // the adapted table must still beat the traditional 64K default.
    let cluster = ClusterConfig::paper_default();
    let ccfg = CollectiveConfig::default();
    let model = CostModelParams::from_cluster_calibrated(&cluster, &CalibrationConfig::default());

    let old_workload = ior(OpKind::Read, 512 * KIB, 1);
    let old_trace = collect_trace_lowered(&cluster, &old_workload, &ccfg);
    let stale_rst = HarlPolicy::new(model.clone()).plan(&SimContext::new(), &old_trace, FILE);

    let new_workload = ior(OpKind::Read, 128 * KIB, 2);
    let new_trace = collect_trace_lowered(&cluster, &new_workload, &ccfg);

    let mut monitor = OnlineMonitor::new(
        model.clone(),
        stale_rst.clone(),
        vec![512 * KIB; stale_rst.len()],
        OnlineConfig::default(),
    );
    let mut events = Vec::new();
    for rec in new_trace.records() {
        events.extend(monitor.observe(*rec));
    }
    assert!(!events.is_empty(), "drift must be detected");
    let adapted_rst = monitor.current_rst().clone();
    assert_ne!(adapted_rst, stale_rst);

    // Self-consistency: the online re-plan lands on the offline optimum
    // for the new pattern.
    let fresh = HarlPolicy::new(model).plan(&SimContext::new(), &new_trace, FILE);
    assert_eq!(
        (adapted_rst.entries()[0].h(), adapted_rst.entries()[0].s()),
        (fresh.entries()[0].h(), fresh.entries()[0].s()),
        "online adaptation should match the fresh offline plan"
    );

    // And it still beats the traditional default on the new pattern.
    let default = RegionStripeTable::single(FILE, 64 * KIB, 64 * KIB);
    let adapted_run = run_workload(
        &SimContext::new(),
        &cluster,
        &adapted_rst,
        &new_workload,
        &ccfg,
    );
    let default_run = run_workload(&SimContext::new(), &cluster, &default, &new_workload, &ccfg);
    assert!(
        adapted_run.throughput_mib_s() > default_run.throughput_mib_s(),
        "adapted {:.0} vs default {:.0}",
        adapted_run.throughput_mib_s(),
        default_run.throughput_mib_s()
    );

    // The migration bill is quantified.
    let e = &events[0];
    assert!(e.migration_bytes > 0);
    assert!(e.break_even_requests(200.0 * 1024.0 * 1024.0).is_some());
}

#[test]
fn multiapp_per_app_planning_beats_shared_default() {
    let cluster = ClusterConfig::paper_default();
    let ccfg = CollectiveConfig::default();
    let app1 = ior(OpKind::Read, 512 * KIB, 3);
    let app2 = ior(OpKind::Read, 128 * KIB, 4);

    let model = CostModelParams::from_cluster_calibrated(&cluster, &CalibrationConfig::default());
    let plan = |w: &Workload| {
        let trace = collect_trace_lowered(&cluster, w, &ccfg);
        HarlPolicy::new(model.clone()).plan(&SimContext::new(), &trace, FILE)
    };
    let rst1 = plan(&app1);
    let rst2 = plan(&app2);
    let default = RegionStripeTable::single(FILE, 64 * KIB, 64 * KIB);

    let harl = run_shared(
        &SimContext::new(),
        &cluster,
        &[(&rst1, &app1), (&rst2, &app2)],
        &ccfg,
    );
    let base = run_shared(
        &SimContext::new(),
        &cluster,
        &[(&default, &app1), (&default, &app2)],
        &ccfg,
    );
    assert!(
        harl.combined.throughput_mib_s() > 1.3 * base.combined.throughput_mib_s(),
        "per-app HARL under contention: {:.0} vs {:.0}",
        harl.combined.throughput_mib_s(),
        base.combined.throughput_mib_s()
    );
    // Both apps individually benefit too.
    for (h, d) in harl.per_app.iter().zip(&base.per_app) {
        assert!(h.throughput_mib_s > d.throughput_mib_s);
    }
}

#[test]
fn straggler_injection_visible_end_to_end() {
    use harl_repro::pfs::Degradation;
    let ccfg = CollectiveConfig::default();
    let w = ior(OpKind::Read, 512 * KIB, 5);
    let rst = RegionStripeTable::single(FILE, 32 * KIB, 160 * KIB);

    let healthy = ClusterConfig::paper_default();
    let degraded = ClusterConfig::paper_default().with_degradation(Degradation::permanent(6, 4.0));
    let a = run_workload(&SimContext::new(), &healthy, &rst, &w, &ccfg);
    let b = run_workload(&SimContext::new(), &degraded, &rst, &w, &ccfg);
    assert!(
        b.throughput_mib_s() < 0.6 * a.throughput_mib_s(),
        "an SServer straggler must hurt an SSD-heavy layout"
    );
}

#[test]
fn k_profile_model_agrees_with_two_class_on_pair_clusters() {
    let cluster = ClusterConfig::paper_default();
    let pair = CostModelParams::from_cluster(&cluster);
    let multi = MultiProfileModel::from_cluster(&cluster);
    for (offset, size) in [(0u64, 512 * KIB), (123 * KIB, 2 * MIB), (7 * KIB, 4 * KIB)] {
        for op in OpKind::ALL {
            let a = pair.request_cost(offset, size, op, 48 * KIB, 96 * KIB);
            let b = multi.request_cost(offset, size, op, &[48 * KIB, 96 * KIB]);
            assert!((a - b).abs() < 1e-15);
        }
    }
}

#[test]
fn analysis_summary_matches_workload_shape() {
    use harl_repro::harl::summarize;
    let cluster = ClusterConfig::paper_default();
    let ccfg = CollectiveConfig::default();
    let w = ior(OpKind::Write, 512 * KIB, 6);
    let trace = collect_trace_lowered(&cluster, &w, &ccfg);
    let s = summarize(&trace);
    assert_eq!(s.requests, trace.len());
    assert_eq!(s.read_fraction, 0.0);
    assert_eq!(s.mean_size as u64, 512 * KIB);
    assert_eq!(s.ranks, 8);
    assert!(s.sequentiality < 0.2, "random IOR must not look sequential");
    assert_eq!(s.pattern_label(), "random/uniform");
}

#[test]
fn metadata_stays_bounded_on_adversarial_trace() {
    // Alternating request sizes try to force one region per request; the
    // threshold adaptation must keep the RST metadata bounded by the
    // fixed-size division (Sec. III-C).
    let cluster = ClusterConfig::paper_default();
    let model = CostModelParams::from_cluster_calibrated(&cluster, &CalibrationConfig::default());
    let mut records = Vec::new();
    for i in 0..2048u64 {
        let size = if i % 2 == 0 { 16 * KIB } else { 2 * MIB };
        records.push(TraceRecord {
            rank: (i % 8) as u32,
            fd: 0,
            op: OpKind::Read,
            offset: i * 2 * MIB,
            size,
            timestamp: SimNanos::from_nanos(i),
        });
    }
    let file_size = 2048 * 2 * MIB; // 4 GiB
    let trace = Trace::from_records(records);
    let rst = HarlPolicy::new(model).plan(&SimContext::new(), &trace, file_size);
    let max_regions = file_size.div_ceil(64 << 20);
    assert!(
        (rst.len() as u64) <= max_regions,
        "{} regions exceed the fixed-division bound {}",
        rst.len(),
        max_regions
    );
    assert!(rst.metadata_bytes() <= max_regions * 32);
}
