//! The paper's qualitative claims, encoded as assertions at quick scale.
//!
//! Each test names the figure or passage it checks. These are the
//! "shape" guarantees of the reproduction: who wins, roughly by how much,
//! and where behaviour flips.

use harl_repro::prelude::*;

const FILE: u64 = 256 << 20;

fn ior(op: OpKind, processes: usize, request_size: u64, cluster_file: u64) -> Workload {
    IorConfig {
        processes,
        request_size,
        file_size: cluster_file,
        op,
        order: AccessOrder::Random,
        seed: 0x10,
    }
    .build()
}

fn harl_for(cluster: &ClusterConfig) -> HarlPolicy {
    HarlPolicy::new(CostModelParams::from_cluster_calibrated(
        cluster,
        &CalibrationConfig::default(),
    ))
}

/// Fig. 1(a): under the default 64 KiB fixed stripe, HServers spend ≳3.5×
/// the I/O time of SServers.
#[test]
fn fig1a_hservers_dominate_io_time() {
    let cluster = ClusterConfig::paper_default();
    let w = ior(OpKind::Read, 16, 512 * KIB, FILE);
    let (_, report) = trace_plan_run(
        &SimContext::new(),
        &cluster,
        &FixedPolicy::new(64 * KIB),
        &w,
        &CollectiveConfig::default(),
    );
    let norm = report.normalized_server_times();
    let h_mean: f64 = norm[..6].iter().sum::<f64>() / 6.0;
    assert!(
        h_mean >= 3.5,
        "HServer I/O time only {h_mean:.2}x of SServers (paper: ~3.5x)"
    );
}

/// Fig. 1(b): the best fixed stripe depends on the request size — no
/// single stripe size wins both a small-request and a large-request
/// workload.
#[test]
fn fig1b_no_universal_fixed_stripe() {
    let cluster = ClusterConfig::paper_default();
    let ccfg = CollectiveConfig::default();
    let stripes = [16 * KIB, 64 * KIB, 256 * KIB, 1024 * KIB, 2048 * KIB];
    let best_for = |req: u64| {
        let w = ior(OpKind::Read, 16, req, FILE);
        stripes
            .iter()
            .map(|&s| {
                let (_, r) = trace_plan_run(
                    &SimContext::new(),
                    &cluster,
                    &FixedPolicy::new(s),
                    &w,
                    &ccfg,
                );
                (s, r.throughput_mib_s())
            })
            .max_by(|a, b| a.1.partial_cmp(&b.1).expect("finite"))
            .expect("non-empty")
            .0
    };
    let small = best_for(128 * KIB);
    let large = best_for(2048 * KIB);
    assert_ne!(
        small, large,
        "one stripe size won at both 128K and 2M — the Fig. 1(b) motivation should not hold"
    );
}

/// Fig. 7: HARL provides the best throughput of all evaluated layouts for
/// both reads and writes, with a solid margin over the 64 KiB default.
#[test]
fn fig7_harl_wins_both_directions() {
    let cluster = ClusterConfig::paper_default();
    let ccfg = CollectiveConfig::default();
    for op in OpKind::ALL {
        let w = ior(op, 16, 512 * KIB, FILE);
        let (_, h) = trace_plan_run(&SimContext::new(), &cluster, &harl_for(&cluster), &w, &ccfg);
        for &stripe in &[16 * KIB, 64 * KIB, 256 * KIB, 1024 * KIB, 2048 * KIB] {
            let (_, f) = trace_plan_run(
                &SimContext::new(),
                &cluster,
                &FixedPolicy::new(stripe),
                &w,
                &ccfg,
            );
            assert!(
                h.throughput_mib_s() >= f.throughput_mib_s(),
                "{op}: HARL lost to fixed {}",
                ByteSize(stripe)
            );
        }
        for seed in [1, 2] {
            let (_, r) = trace_plan_run(
                &SimContext::new(),
                &cluster,
                &RandomPolicy::new(seed),
                &w,
                &ccfg,
            );
            assert!(h.throughput_mib_s() >= r.throughput_mib_s());
        }
    }
}

/// Fig. 7 detail: the paper's measured read optimum on 6H+2S at 512 KiB is
/// {32K, 160K}; our calibrated pipeline lands on the same pair.
#[test]
fn fig7_read_optimum_is_32k_160k() {
    let cluster = ClusterConfig::paper_default();
    let w = ior(OpKind::Read, 16, 512 * KIB, FILE);
    let (rst, _) = trace_plan_run(
        &SimContext::new(),
        &cluster,
        &harl_for(&cluster),
        &w,
        &CollectiveConfig::default(),
    );
    let e = &rst.entries()[0];
    assert_eq!(
        (e.h() / 1024, e.s() / 1024),
        (32, 160),
        "read optimum drifted from the paper's {{32K, 160K}}"
    );
}

/// Fig. 9: at 128 KiB requests the optimal layout stores the file on
/// SServers only ({0K, 64K}), and at 1024 KiB it uses both classes.
#[test]
fn fig9_small_requests_ssd_only_large_requests_mixed() {
    let cluster = ClusterConfig::paper_default();
    let ccfg = CollectiveConfig::default();

    let w_small = ior(OpKind::Read, 16, 128 * KIB, FILE);
    let (rst_small, _) = trace_plan_run(
        &SimContext::new(),
        &cluster,
        &harl_for(&cluster),
        &w_small,
        &ccfg,
    );
    let e = &rst_small.entries()[0];
    assert_eq!(
        (e.h(), e.s()),
        (0, 64 * KIB),
        "paper: {{0K, 64K}} at 128 KiB"
    );

    let w_large = ior(OpKind::Read, 16, 1024 * KIB, FILE);
    let (rst_large, _) = trace_plan_run(
        &SimContext::new(),
        &cluster,
        &harl_for(&cluster),
        &w_large,
        &ccfg,
    );
    let e = &rst_large.entries()[0];
    assert!(e.h() > 0, "1024 KiB requests should use both classes");
    assert!(e.s() > e.h());
}

/// Fig. 10: with more SServers than HServers (2:6), HARL places the file
/// only on SServers and the improvement over the default grows much larger
/// than in the 6:2 configuration.
#[test]
fn fig10_ssd_rich_cluster_goes_ssd_only() {
    let ccfg = CollectiveConfig::default();
    let improvement = |m: usize, n: usize| -> (f64, u64) {
        let cluster = ClusterConfig::hybrid(m, n);
        let w = ior(OpKind::Read, 16, 512 * KIB, FILE);
        let (rst, h) = trace_plan_run(&SimContext::new(), &cluster, &harl_for(&cluster), &w, &ccfg);
        let (_, d) = trace_plan_run(
            &SimContext::new(),
            &cluster,
            &FixedPolicy::new(64 * KIB),
            &w,
            &ccfg,
        );
        (
            h.throughput_mib_s() / d.throughput_mib_s(),
            rst.entries()[0].h(),
        )
    };
    let (gain_62, _) = improvement(6, 2);
    let (gain_26, h_26) = improvement(2, 6);
    assert_eq!(h_26, 0, "2:6 cluster should go SServer-only");
    assert!(
        gain_26 > gain_62 * 1.5,
        "SSD-rich gain {gain_26:.2}x should dwarf the 6:2 gain {gain_62:.2}x"
    );
}

/// Fig. 11: on the non-uniform four-phase workload HARL produces multiple
/// regions with different layouts and beats every fixed stripe.
#[test]
fn fig11_nonuniform_workload_gets_regions() {
    let cluster = ClusterConfig::paper_default();
    let ccfg = CollectiveConfig::default();
    let w = MultiRegionIorConfig::paper_default(OpKind::Read, 1.0 / 64.0).build();
    // The workload is scaled down 64x, so scale the fixed-region bound that
    // caps the region count accordingly (64 MiB at paper scale -> 4 MiB).
    let mut policy = harl_for(&cluster);
    policy.division.fixed_region_size = 4 << 20;
    let (rst, h) = trace_plan_run(&SimContext::new(), &cluster, &policy, &w, &ccfg);
    assert!(
        rst.len() >= 2,
        "expected region division to find the phases, got {} region(s)",
        rst.len()
    );
    let layouts: std::collections::HashSet<(u64, u64)> =
        rst.entries().iter().map(|e| (e.h(), e.s())).collect();
    assert!(layouts.len() >= 2, "regions should get distinct layouts");
    for &stripe in &[16 * KIB, 64 * KIB, 256 * KIB] {
        let (_, f) = trace_plan_run(
            &SimContext::new(),
            &cluster,
            &FixedPolicy::new(stripe),
            &w,
            &ccfg,
        );
        assert!(h.throughput_mib_s() > f.throughput_mib_s());
    }
}

/// Fig. 12: HARL improves BTIO (collective, nested-strided) at every
/// process count the paper uses.
#[test]
fn fig12_btio_improves_at_all_process_counts() {
    let cluster = ClusterConfig::paper_default();
    let ccfg = CollectiveConfig::default();
    for procs in [4usize, 16] {
        let mut cfg = BtioConfig::paper_default(procs);
        cfg.grid = 40;
        let w = cfg.build();
        let (_, h) = trace_plan_run(&SimContext::new(), &cluster, &harl_for(&cluster), &w, &ccfg);
        let (_, d) = trace_plan_run(
            &SimContext::new(),
            &cluster,
            &FixedPolicy::new(64 * KIB),
            &w,
            &ccfg,
        );
        assert!(
            h.throughput_mib_s() > d.throughput_mib_s(),
            "BTIO at {procs} procs: HARL {:.0} vs default {:.0}",
            h.throughput_mib_s(),
            d.throughput_mib_s()
        );
    }
}

/// Sec. III-A: "SServers are usually allocated with larger stripe sizes
/// than HServers in each region, so that each server can finish their I/O
/// requests nearly at the same time."
#[test]
fn harl_balances_completion_times() {
    let cluster = ClusterConfig::paper_default();
    let w = ior(OpKind::Read, 16, 512 * KIB, FILE);
    let ccfg = CollectiveConfig::default();
    let (rst, report) =
        trace_plan_run(&SimContext::new(), &cluster, &harl_for(&cluster), &w, &ccfg);
    let e = &rst.entries()[0];
    assert!(e.s() > e.h(), "SServer stripe must exceed HServer stripe");
    assert!(
        report.imbalance() < 2.0,
        "HARL imbalance {:.2}x should be far below the default's ~5x",
        report.imbalance()
    );
}

/// Sec. IV-D: space balancing keeps SServer usage within budget at a
/// bounded performance cost.
#[test]
fn discussion_space_balancing_respects_budget() {
    use harl_repro::harl::projected_sserver_bytes;
    let cluster = ClusterConfig::paper_default();
    let w = ior(OpKind::Read, 16, 512 * KIB, FILE);
    let ccfg = CollectiveConfig::default();
    let trace = collect_trace_lowered(&cluster, &w, &ccfg);
    let model = CostModelParams::from_cluster_calibrated(&cluster, &CalibrationConfig::default());
    let rst = HarlPolicy::new(model.clone()).plan(&SimContext::new(), &trace, FILE);
    let unconstrained = projected_sserver_bytes(&model, &rst);
    let balancer = SpaceBalancer {
        model: model.clone(),
        sserver_capacity: unconstrained / 2,
        optimizer: OptimizerConfig::default(),
    };
    let outcome = balancer.balance(&rst, &trace.sorted_by_offset());
    assert!(outcome.sserver_bytes_after < unconstrained);
    // The balanced plan still beats the 64 KiB default.
    let balanced = run_workload(&SimContext::new(), &cluster, &outcome.rst, &w, &ccfg);
    let (_, default_run) = trace_plan_run(
        &SimContext::new(),
        &cluster,
        &FixedPolicy::new(64 * KIB),
        &w,
        &ccfg,
    );
    assert!(
        balanced.throughput_mib_s() > default_run.throughput_mib_s(),
        "space-balanced HARL should still beat the default"
    );
}
