//! Observability demo: record a run, then mine it.
//!
//! Plans a HARL layout for a small multi-region IOR workload, replays it
//! with the in-memory [`MemoryRecorder`] attached, and then answers two
//! questions straight from the recorded data:
//!
//! 1. *Which requests were slowest, and where did their time go?* — the
//!    per-request spans break each request into mds / nic / disk hops with
//!    queue-wait and service-time deltas.
//! 2. *How well does the Sec. III-D cost model predict reality?* — each
//!    span is replayed through the model for its region's `(h, s)` pair
//!    and the residual `actual − predicted` is summarised per region (the
//!    same model-drift signal the on-line monitor uses to trigger
//!    re-optimization).
//!
//! ```sh
//! cargo run --release --example observability_demo
//! ```

use harl_repro::prelude::*;
use harl_repro::simcore::OnlineStats;
use std::sync::Arc;

fn main() {
    // A scaled-down version of the paper's Fig. 11 non-uniform workload:
    // four regions with different request sizes, so the regions get
    // different stripe pairs and visibly different residual profiles.
    let cluster = ClusterConfig::paper_default();
    let workload = MultiRegionIorConfig::paper_default(OpKind::Read, 0.05).build();
    let model = CostModelParams::from_cluster_calibrated(&cluster, &CalibrationConfig::default());

    let recorder = Arc::new(MemoryRecorder::new());
    let ctx = SimContext::recorded(recorder.clone());
    let policy = HarlPolicy::new(model.clone());
    let (rst, report) = trace_plan_run(
        &ctx,
        &cluster,
        &policy,
        &workload,
        &CollectiveConfig::default(),
    );

    println!(
        "replayed {} requests at {:.1} MiB/s ({} metric series, {} spans recorded)",
        report.requests_completed,
        report.throughput_mib_s(),
        recorder.series_count(),
        recorder.spans().len()
    );

    // --- 1. Top-3 slowest requests, with their hop breakdown. ---
    let mut spans = recorder.spans();
    spans.sort_by_key(|s| std::cmp::Reverse(s.latency_ns()));
    println!("\ntop-3 slowest requests:");
    for span in spans.iter().take(3) {
        let get = |key: &str| label(span, key);
        println!(
            "  request {} ({} {} region {} @ {}): {:.3} ms end-to-end",
            span.id,
            get("op"),
            ByteSize(get("size").parse().unwrap_or(0)),
            get("file"),
            ByteSize(get("offset").parse().unwrap_or(0)),
            span.latency_ns() as f64 / 1e6
        );
        for hop in &span.hops {
            let at = match hop.server {
                Some(s) => format!("{}[{s}]", hop.stage),
                None => hop.stage.to_string(),
            };
            println!(
                "      {:<14} queued {:>9.3} ms, served {:>9.3} ms",
                at,
                hop.queue_ns() as f64 / 1e6,
                hop.service_ns() as f64 / 1e6
            );
        }
    }

    // --- 2. Per-region predicted-vs-actual cost residuals. ---
    let mut residuals: Vec<OnlineStats> = vec![OnlineStats::new(); rst.len()];
    let mut predictions: Vec<OnlineStats> = vec![OnlineStats::new(); rst.len()];
    for span in &spans {
        let Ok(region) = label(span, "file").parse::<usize>() else {
            continue;
        };
        let Some(entry) = rst.entries().get(region) else {
            continue;
        };
        let (Ok(offset), Ok(size)) = (
            label(span, "offset").parse::<u64>(),
            label(span, "size").parse::<u64>(),
        ) else {
            continue;
        };
        let op = if label(span, "op") == "write" {
            OpKind::Write
        } else {
            OpKind::Read
        };
        let predicted = model.request_cost(offset, size, op, entry.h(), entry.s());
        predictions[region].push(predicted);
        residuals[region].push(span.latency_ns() as f64 / 1e9 - predicted);
    }
    println!("\nper-region cost-model residuals (actual − predicted):");
    println!(
        "  {:<8} {:>12} {:>8} {:>14} {:>14} {:>14}",
        "region", "(h, s) KiB", "n", "predicted", "mean residual", "std dev"
    );
    for (region, entry) in rst.entries().iter().enumerate() {
        let (p, r) = (&predictions[region], &residuals[region]);
        if r.count() == 0 {
            continue;
        }
        println!(
            "  {:<8} {:>12} {:>8} {:>11.3} ms {:>11.3} ms {:>11.3} ms",
            region,
            format!("({}, {})", entry.h() / 1024, entry.s() / 1024),
            r.count(),
            p.mean() * 1e3,
            r.mean() * 1e3,
            r.std_dev() * 1e3
        );
    }
    println!(
        "\n(the residual mean is the queueing/contention share the isolated-request \
         model cannot see; a drift of the *pattern* moves it sharply, which is what \
         OnlineMonitor::observe_served watches for)"
    );
}

fn label(span: &SpanRecord, key: &str) -> String {
    span.labels
        .iter()
        .find(|(k, _)| *k == key)
        .map(|(_, v)| v.clone())
        .unwrap_or_default()
}
