//! On-line drift detection — the paper's future work ("explore on-line
//! data layout and data migration methods") in action.
//!
//! An application is planned for 512 KiB requests; mid-life it switches to
//! a 128 KiB pattern. The monitor watches the live stream, confirms the
//! drift over consecutive windows, re-plans the affected region, and
//! quantifies the migration bill and its break-even point.
//!
//! ```sh
//! cargo run --release --example drift_monitor
//! ```

use harl_repro::harl::{OnlineConfig, OnlineMonitor};
use harl_repro::prelude::*;

fn main() {
    let cluster = ClusterConfig::paper_default();
    let ccfg = CollectiveConfig::default();
    let model = CostModelParams::from_cluster_calibrated(&cluster, &CalibrationConfig::default());

    // Day 1: plan for the traced 512 KiB pattern.
    let old = IorConfig::paper_default(OpKind::Read, GIB).build();
    let old_trace = collect_trace_lowered(&cluster, &old, &ccfg);
    let rst = HarlPolicy::new(model.clone()).plan(&SimContext::new(), &old_trace, 16 * GIB);
    let e = &rst.entries()[0];
    println!(
        "planned for 512KiB requests: (h, s) = ({}, {})",
        ByteSize(e.h()),
        ByteSize(e.s())
    );

    // Day 30: the pattern drifts to 128 KiB requests.
    let new = IorConfig {
        processes: 16,
        request_size: 128 * KIB,
        file_size: GIB,
        op: OpKind::Read,
        order: AccessOrder::Random,
        seed: 99,
    }
    .build();
    let live = collect_trace_lowered(&cluster, &new, &ccfg);

    let mut monitor = OnlineMonitor::new(model, rst, vec![512 * KIB], OnlineConfig::default());
    let mut fired = 0;
    for (i, rec) in live.records().iter().enumerate() {
        for event in monitor.observe(*rec) {
            fired += 1;
            println!(
                "\nafter {} live requests: drift confirmed in region {}",
                i + 1,
                event.region
            );
            println!(
                "  planned avg {} -> observed avg {}",
                ByteSize(event.planned_avg),
                ByteSize(event.observed_avg)
            );
            println!(
                "  re-plan ({}, {}) -> ({}, {})",
                ByteSize(event.old[0]),
                ByteSize(event.old[1]),
                ByteSize(event.new[0]),
                ByteSize(event.new[1])
            );
            println!(
                "  migration: {} to re-stripe; saves {:.2} ms/request",
                ByteSize(event.migration_bytes),
                event.saving_per_request_s * 1e3
            );
            if let Some(n) = event.break_even_requests(400.0 * 1024.0 * 1024.0) {
                println!("  pays for itself after {n} requests at 400 MiB/s migration speed");
            }
        }
    }
    assert!(fired > 0, "drift should have been detected");
    let adapted = &monitor.current_rst().entries()[0];
    println!(
        "\nactive layout now: (h, s) = ({}, {})",
        ByteSize(adapted.h()),
        ByteSize(adapted.s())
    );
}
