//! Quickstart: the whole HARL pipeline in one page.
//!
//! Builds the paper's default hybrid cluster (6 HServers + 2 SServers),
//! traces an IOR-like workload, plans a layout with HARL, and compares the
//! result against the traditional 64 KiB fixed-stripe default.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use harl_repro::prelude::*;

fn main() {
    // 1. The platform: the paper's testbed shape.
    let cluster = ClusterConfig::paper_default();
    println!(
        "cluster: {} HServers + {} SServers, {} compute nodes",
        cluster.hserver_count(),
        cluster.sserver_count(),
        cluster.compute_nodes
    );

    // 2. The application: IOR, 16 processes, 512 KiB random requests over a
    //    shared 1 GiB file (scaled down from the paper's 16 GiB).
    let workload = IorConfig::paper_default(OpKind::Read, GIB).build();

    // 3. Analysis Phase inputs: *measured* device parameters, exactly as
    //    the paper probes one file server of each kind.
    let model = CostModelParams::from_cluster_calibrated(&cluster, &CalibrationConfig::default());

    // 4. Trace -> plan -> place -> run, under HARL and under the default.
    let ccfg = CollectiveConfig::default();
    let harl = HarlPolicy::new(model);
    let (rst, harl_report) = trace_plan_run(&SimContext::new(), &cluster, &harl, &workload, &ccfg);
    let (_, default_report) = trace_plan_run(
        &SimContext::new(),
        &cluster,
        &FixedPolicy::new(64 * 1024),
        &workload,
        &ccfg,
    );

    println!("\nHARL region stripe table:");
    for (i, e) in rst.entries().iter().enumerate() {
        println!(
            "  region {i}: [{}, {}) h = {}, s = {}",
            ByteSize(e.offset),
            ByteSize(e.end()),
            ByteSize(e.h()),
            ByteSize(e.s())
        );
    }

    let h = harl_report.throughput_mib_s();
    let d = default_report.throughput_mib_s();
    println!("\ndefault 64K : {d:.1} MiB/s");
    println!("HARL        : {h:.1} MiB/s  ({:+.1}%)", 100.0 * (h - d) / d);

    // 5. Where did the imbalance go? (the paper's Fig. 1(a) view)
    println!("\nper-server busy time (normalised to fastest):");
    println!(
        "  default: {:?}",
        rounded(&default_report.normalized_server_times())
    );
    println!(
        "  HARL   : {:?}",
        rounded(&harl_report.normalized_server_times())
    );
}

fn rounded(xs: &[f64]) -> Vec<f64> {
    xs.iter().map(|x| (x * 100.0).round() / 100.0).collect()
}
