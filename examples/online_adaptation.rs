//! Space-aware re-layout — the paper's Sec. IV-D discussion and future
//! work: HARL loads SServers heavily, so when the SSD pool is small, data
//! must migrate back toward HServers with the least performance loss.
//!
//! The flow: trace the first run, plan with HARL, notice the plan exceeds
//! the SServer capacity budget, balance it with [`SpaceBalancer`], and
//! replay the workload under both plans to measure the real cost of the
//! space constraint.
//!
//! ```sh
//! cargo run --release --example online_adaptation
//! ```

use harl_repro::harl::projected_sserver_bytes;
use harl_repro::prelude::*;

fn main() {
    let cluster = ClusterConfig::paper_default();
    let ccfg = CollectiveConfig::default();
    let workload = IorConfig::paper_default(OpKind::Read, GIB).build();
    let file_size = 16 * GIB; // the file HARL lays out is much bigger than the SSD budget

    // First run: trace and plan.
    let trace = collect_trace_lowered(&cluster, &workload, &ccfg);
    let model = CostModelParams::from_cluster_calibrated(&cluster, &CalibrationConfig::default());
    let harl = HarlPolicy::new(model.clone());
    let rst = harl.plan(&SimContext::new(), &trace, file_size);
    let ssd_bytes = projected_sserver_bytes(&model, &rst);
    println!(
        "HARL plan: (h, s) = ({}, {}), projected SServer usage {} of a {} file",
        ByteSize(rst.entries()[0].h()),
        ByteSize(rst.entries()[0].s()),
        ByteSize(ssd_bytes),
        ByteSize(file_size)
    );

    // The SSD pool only has room for half of that.
    let budget = ssd_bytes / 2;
    let balancer = SpaceBalancer {
        model: model.clone(),
        sserver_capacity: budget,
        optimizer: OptimizerConfig::default(),
    };
    let sorted = trace.sorted_by_offset();
    let outcome = balancer.balance(&rst, &sorted);
    println!(
        "balanced to {} (budget {}): {} region(s) adjusted, predicted cost {:+.1}%",
        ByteSize(outcome.sserver_bytes_after),
        ByteSize(budget),
        outcome.regions_adjusted,
        100.0 * outcome.cost_increase_frac
    );
    for e in outcome.rst.entries() {
        println!(
            "  region [{}, {}): h = {}, s = {}",
            ByteSize(e.offset),
            ByteSize(e.end()),
            ByteSize(e.h()),
            ByteSize(e.s())
        );
    }

    // Replay under both plans: how much throughput does the space
    // constraint actually cost?
    let unconstrained = run_workload(&SimContext::new(), &cluster, &rst, &workload, &ccfg);
    let constrained = run_workload(&SimContext::new(), &cluster, &outcome.rst, &workload, &ccfg);
    let (u, c) = (
        unconstrained.throughput_mib_s(),
        constrained.throughput_mib_s(),
    );
    println!("\nunconstrained HARL : {u:.1} MiB/s");
    println!(
        "space-balanced     : {c:.1} MiB/s ({:+.1}%)",
        100.0 * (c - u) / u
    );
    assert!(outcome.sserver_bytes_after <= outcome.sserver_bytes_before);
}
