//! A benchmarking campaign over layouts and request sizes — the scenario
//! from the paper's motivation: the same cluster serves applications with
//! very different request sizes, and no fixed stripe suits them all.
//!
//! ```sh
//! cargo run --release --example ior_campaign
//! ```

use harl_repro::prelude::*;

fn main() {
    let cluster = ClusterConfig::paper_default();
    let ccfg = CollectiveConfig::default();
    let file_size = GIB;
    let request_sizes = [128 * KIB, 512 * KIB, 1024 * KIB, 2048 * KIB];
    let fixed_stripes = [16 * KIB, 64 * KIB, 256 * KIB, 1024 * KIB];

    let model = CostModelParams::from_cluster_calibrated(&cluster, &CalibrationConfig::default());

    println!(
        "{:<10} {:>8} {:>8} {:>8} {:>8} {:>10}  HARL (h, s)",
        "req size", "16K", "64K", "256K", "1M", "HARL"
    );
    for &rs in &request_sizes {
        let workload = IorConfig {
            processes: 16,
            request_size: rs,
            file_size,
            op: OpKind::Read,
            order: AccessOrder::Random,
            seed: 7,
        }
        .build();

        let mut row = format!("{:<10}", ByteSize(rs).to_string());
        for &stripe in &fixed_stripes {
            let (_, report) = trace_plan_run(
                &SimContext::new(),
                &cluster,
                &FixedPolicy::new(stripe),
                &workload,
                &ccfg,
            );
            row.push_str(&format!(" {:>8.0}", report.throughput_mib_s()));
        }
        let harl = HarlPolicy::new(model.clone());
        let (rst, report) = trace_plan_run(&SimContext::new(), &cluster, &harl, &workload, &ccfg);
        let e = &rst.entries()[0];
        row.push_str(&format!(
            " {:>10.0}  ({}, {})",
            report.throughput_mib_s(),
            ByteSize(e.h()),
            ByteSize(e.s())
        ));
        println!("{row}");
    }
    println!("\n(throughput in MiB/s; HARL adapts the stripe pair per request size,");
    println!(" including SServer-only placement for small requests)");
}
