//! Fault injection: HARL vs fixed striping on a degraded cluster.
//!
//! The paper's testbed has 6 HServers and 2 SServers; here one of the two
//! SServers (server index 6 — HServers come first) runs at quarter speed
//! for the whole run, the "permanent straggler" case. The fault plan is
//! injected through the [`SimContext`], so the *same* cluster config and
//! workload run both healthy and degraded — nothing about the experiment
//! changes except the context.
//!
//! Two observations fall out:
//!
//! 1. The *fixed* 64 KiB layout barely notices: under uniform striping
//!    the slow HServers pace every request anyway (the paper's Fig. 1(a)
//!    imbalance), so one SServer at quarter speed stays off the critical
//!    path.
//! 2. HARL is hit hard. Its plan — made from the *healthy* device
//!    profiles, before the fault is observable — deliberately shifts
//!    load onto the fast SServers, so the straggler sits exactly where
//!    HARL put the bytes and the healthy-cluster advantage inverts.
//!    This is the model-drift situation the on-line monitor exists for
//!    (see the `drift_monitor` example): the residuals between predicted
//!    and actual cost explode on the degraded servers and trigger a
//!    re-plan.
//!
//! ```sh
//! cargo run --release --example degraded_cluster
//! ```

use harl_repro::prelude::*;

fn run(ctx: &SimContext, label: &str, cluster: &ClusterConfig, workload: &Workload) {
    let model = CostModelParams::from_cluster_calibrated(cluster, &CalibrationConfig::default());
    let harl = HarlPolicy::new(model);
    let ccfg = CollectiveConfig::default();
    let (_, harl_report) = trace_plan_run(ctx, cluster, &harl, workload, &ccfg);
    let (_, fixed_report) =
        trace_plan_run(ctx, cluster, &FixedPolicy::new(64 * 1024), workload, &ccfg);
    let h = harl_report.throughput_mib_s();
    let f = fixed_report.throughput_mib_s();
    println!(
        "{label:<22} fixed-64K {f:>8.1} MiB/s   HARL {h:>8.1} MiB/s   ({:+.1}%)",
        100.0 * (h - f) / f
    );
}

fn main() {
    let cluster = ClusterConfig::paper_default();
    let workload = IorConfig::paper_default(OpKind::Read, 512 << 20).build();

    // Healthy baseline: the default context injects nothing.
    let healthy = SimContext::new();

    // Permanent straggler: SServer 0 (global index 6) at quarter speed
    // from t=0 forever.
    let straggler = Degradation {
        server: cluster.hserver_count(),
        from: SimNanos::ZERO,
        until: SimNanos::MAX,
        slowdown: 4.0,
    };
    let degraded = SimContext::new().with_fault(straggler);

    println!(
        "cluster: {} HServers + {} SServers; straggler = server {} at 4x service time\n",
        cluster.hserver_count(),
        cluster.sserver_count(),
        cluster.hserver_count()
    );
    run(&healthy, "healthy", &cluster, &workload);
    run(&degraded, "degraded (straggler)", &cluster, &workload);

    // The same experiment as a declarative scenario: the fault plan is
    // part of the spec, so `harl-cli run --scenario` reproduces it.
    let scenario = Scenario::new(WorkloadSpec::Ior(IorConfig::paper_default(
        OpKind::Read,
        512 << 20,
    )))
    .named("degraded-sserver")
    .with_fault(FaultSpec {
        server: cluster.hserver_count(),
        slowdown: 4.0,
        from_s: 0.0,
        until_s: None,
    });
    let report = scenario.run(&SimContext::new()).expect("scenario runs");
    println!(
        "\nsame fault via Scenario \"{}\": {:.1} MiB/s over {} regions",
        report.name, report.throughput_mib_s, report.regions
    );
}
