//! BTIO-style checkpointing — the paper's scientific-application scenario.
//!
//! A block-tridiagonal solver dumps its solution array collectively every
//! few time steps and reads it back for verification (NAS BTIO, "full"
//! subtype). The middleware turns each collective dump into large
//! contiguous aggregator requests via two-phase I/O; HARL then lays the
//! checkpoint file out across the hybrid servers. The RST and R2F tables
//! are persisted next to the application, as in the paper (Sec. III-G).
//!
//! ```sh
//! cargo run --release --example btio_checkpoint
//! ```

use harl_repro::prelude::*;

fn main() {
    let cluster = ClusterConfig::paper_default();
    let ccfg = CollectiveConfig::default();

    let mut cfg = BtioConfig::paper_default(16);
    cfg.grid = 52; // scaled-down grid; use 104 for the paper's 1.7 GB
    let workload = cfg.build();
    println!(
        "BTIO: grid {}^3, {} dumps of {}, total I/O {}",
        cfg.grid,
        cfg.dump_count(),
        ByteSize(cfg.dump_size()),
        ByteSize(cfg.total_io_bytes())
    );

    // What does the PFS actually see? Compare the application-level trace
    // with the post-collective (lowered) trace.
    let app_trace = collect_trace(&workload);
    let pfs_trace = collect_trace_lowered(&cluster, &workload, &ccfg);
    println!(
        "application issues {} requests (mean {}), the PFS sees {} (mean {})",
        app_trace.len(),
        ByteSize(app_trace.size_stats().mean() as u64),
        pfs_trace.len(),
        ByteSize(pfs_trace.size_stats().mean() as u64),
    );

    let model = CostModelParams::from_cluster_calibrated(&cluster, &CalibrationConfig::default());
    let harl = HarlPolicy::new(model);
    let (rst, harl_report) = trace_plan_run(&SimContext::new(), &cluster, &harl, &workload, &ccfg);
    let (_, default_report) = trace_plan_run(
        &SimContext::new(),
        &cluster,
        &FixedPolicy::new(64 * 1024),
        &workload,
        &ccfg,
    );

    let h = harl_report.throughput_mib_s();
    let d = default_report.throughput_mib_s();
    println!("\ndefault 64K : {d:.1} MiB/s");
    println!("HARL        : {h:.1} MiB/s  ({:+.1}%)", 100.0 * (h - d) / d);

    // Persist the layout artifacts like the paper does (loaded at
    // MPI_Init in later runs).
    let dir = std::env::temp_dir().join("harl-btio-example");
    std::fs::create_dir_all(&dir).expect("create artifact dir");
    let rst_path = dir.join("checkpoint.rst.json");
    rst.save_to_path(&rst_path).expect("persist RST");
    println!("\nRST persisted to {}", rst_path.display());
    let reloaded = RegionStripeTable::load_from_path(&rst_path).expect("reload RST");
    assert_eq!(reloaded, rst);
    println!("reloaded RST matches ({} regions)", reloaded.len());
}
