//! Offline stand-in for `criterion`.
//!
//! A real (if small) wall-clock micro-benchmark harness exposing the
//! criterion API surface this workspace's benches use: `Criterion`,
//! benchmark groups, `BenchmarkId`, `Throughput`, `Bencher::iter`, and the
//! `criterion_group!` / `criterion_main!` macros. Each benchmark is
//! calibrated with a short warm-up, then timed over a fixed measurement
//! budget; results print as `ns/iter` (plus derived element/byte
//! throughput when the group declares one).
//!
//! No statistics beyond mean-of-batch, no HTML reports, no comparison
//! baselines — run twice and diff the printed numbers instead.

use std::fmt;
use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Prevent the optimiser from deleting a benchmarked computation.
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// Declared work per iteration, used to derive throughput lines.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Iteration processes this many logical elements.
    Elements(u64),
    /// Iteration processes this many bytes.
    Bytes(u64),
}

/// A benchmark identifier: `function_name/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id with a function name and a parameter rendering.
    pub fn new(function: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function.into(), parameter),
        }
    }

    /// An id from a parameter alone.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.id)
    }
}

/// Passed to the benchmark closure; runs and times the workload.
pub struct Bencher {
    /// Mean nanoseconds per iteration, filled in by [`iter`](Self::iter).
    ns_per_iter: f64,
}

impl Bencher {
    /// Time `f`, storing the mean cost per call.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up: run for a short period to fault in caches/branches and
        // estimate per-iteration cost.
        let warmup = Duration::from_millis(30);
        let start = Instant::now();
        let mut warm_iters = 0u64;
        while start.elapsed() < warmup {
            std_black_box(f());
            warm_iters += 1;
        }
        let est_ns = (warmup.as_nanos() as f64 / warm_iters.max(1) as f64).max(1.0);

        // Measurement: a batch sized to ~120 ms, capped for slow workloads.
        let budget_ns = 120_000_000.0;
        let iters = ((budget_ns / est_ns) as u64).clamp(1, 1_000_000);
        let t0 = Instant::now();
        for _ in 0..iters {
            std_black_box(f());
        }
        let elapsed = t0.elapsed();
        self.ns_per_iter = elapsed.as_nanos() as f64 / iters as f64;
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Declare per-iteration work for derived throughput reporting.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Accepted for API compatibility; the measurement budget is fixed.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for API compatibility; the measurement budget is fixed.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Run one benchmark in this group.
    pub fn bench_function<F>(&mut self, id: impl fmt::Display, f: F) -> &mut Self
    where
        F: FnOnce(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id);
        self.criterion.run_one(&full, self.throughput, f);
        self
    }

    /// Run one benchmark parameterised by `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl fmt::Display,
        input: &I,
        f: F,
    ) -> &mut Self
    where
        F: FnOnce(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id);
        self.criterion
            .run_one(&full, self.throughput, |b| f(b, input));
        self
    }

    /// End the group (printing happens per-benchmark; nothing to flush).
    pub fn finish(self) {}
}

/// The benchmark driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Accepted for API compatibility (`cargo bench` passes `--bench`).
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Open a named group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            throughput: None,
        }
    }

    /// Run a stand-alone benchmark.
    pub fn bench_function<F>(&mut self, id: impl fmt::Display, f: F) -> &mut Self
    where
        F: FnOnce(&mut Bencher),
    {
        self.run_one(&id.to_string(), None, f);
        self
    }

    fn run_one<F>(&mut self, name: &str, throughput: Option<Throughput>, f: F)
    where
        F: FnOnce(&mut Bencher),
    {
        let mut b = Bencher { ns_per_iter: 0.0 };
        f(&mut b);
        let mut line = format!("{name:<56} {:>12.1} ns/iter", b.ns_per_iter);
        if b.ns_per_iter > 0.0 {
            match throughput {
                Some(Throughput::Elements(n)) => {
                    let per_s = n as f64 * 1e9 / b.ns_per_iter;
                    line.push_str(&format!("  ({per_s:.3e} elem/s)"));
                }
                Some(Throughput::Bytes(n)) => {
                    let mib_s = n as f64 * 1e9 / b.ns_per_iter / (1024.0 * 1024.0);
                    line.push_str(&format!("  ({mib_s:.1} MiB/s)"));
                }
                None => {}
            }
        }
        println!("{line}");
    }
}

/// Bundle benchmark functions into a runnable group function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $( $target(&mut criterion); )+
        }
    };
}

/// Emit `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn id_formats_with_parameter() {
        assert_eq!(BenchmarkId::new("f", 32).to_string(), "f/32");
        assert_eq!(BenchmarkId::from_parameter("x").to_string(), "x");
    }

    #[test]
    fn bencher_measures_something() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("t");
        group.throughput(Throughput::Elements(1));
        group.bench_function("noop", |b| {
            let mut x = 0u64;
            b.iter(|| {
                x = x.wrapping_add(1);
                x
            })
        });
        group.finish();
    }
}
