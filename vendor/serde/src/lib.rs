//! Offline stand-in for `serde`.
//!
//! The container registry is unreachable in this build environment, so the
//! workspace vendors a minimal serde replacement. Unlike real serde's
//! visitor-based data model, the traits here are defined directly over a
//! JSON [`Value`]: every serialisation in this workspace goes through
//! `serde_json`, so the intermediate data model would only be dead weight.
//!
//! `#[derive(Serialize, Deserialize)]` works as usual via the vendored
//! `serde_derive` (enabled by the `derive` feature, mirroring real serde).
//! The `serde_json` shim re-exports [`Value`], [`Map`], [`Number`] and
//! [`Error`] from here and adds the text format on top.

use std::fmt;

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

/// A JSON value: the entire data model of the vendored serde stack.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// JSON number (integer or float, see [`Number`]).
    Number(Number),
    /// JSON string.
    String(String),
    /// JSON array.
    Array(Vec<Value>),
    /// JSON object, insertion-ordered.
    Object(Map),
}

impl Value {
    /// The object behind this value, if it is one.
    pub fn as_object(&self) -> Option<&Map> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }

    /// The array behind this value, if it is one.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// The string behind this value, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean behind this value, if it is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// This value as an `f64`, if it is numeric.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(n.as_f64()),
            _ => None,
        }
    }

    /// This value as a `u64`, if it is an exact non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(n) => n.as_u64(),
            _ => None,
        }
    }

    /// This value as an `i64`, if it is an exact integer in range.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Number(n) => n.as_i64(),
            _ => None,
        }
    }

    /// True for JSON `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Object member lookup; `None` for non-objects and missing keys.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object().and_then(|m| m.get(key))
    }
}

impl std::ops::Index<&str> for Value {
    type Output = Value;
    fn index(&self, key: &str) -> &Value {
        static NULL: Value = Value::Null;
        self.get(key).unwrap_or(&NULL)
    }
}

impl std::ops::Index<usize> for Value {
    type Output = Value;
    fn index(&self, idx: usize) -> &Value {
        static NULL: Value = Value::Null;
        self.as_array().and_then(|a| a.get(idx)).unwrap_or(&NULL)
    }
}

/// A JSON number. Integers keep exact 64-bit representations; only values
/// that need it are stored as floats.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Number {
    /// Non-negative integer.
    U64(u64),
    /// Negative integer.
    I64(i64),
    /// Anything else.
    F64(f64),
}

impl Number {
    /// Lossy conversion to `f64` (exact for small integers).
    pub fn as_f64(&self) -> f64 {
        match *self {
            Number::U64(u) => u as f64,
            Number::I64(i) => i as f64,
            Number::F64(f) => f,
        }
    }

    /// Exact conversion to `u64` if the number is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Number::U64(u) => Some(u),
            Number::I64(i) => u64::try_from(i).ok(),
            Number::F64(f) if f >= 0.0 && f.fract() == 0.0 && f <= u64::MAX as f64 => {
                Some(f as u64)
            }
            Number::F64(_) => None,
        }
    }

    /// Exact conversion to `i64` if the number is an integer in range.
    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Number::U64(u) => i64::try_from(u).ok(),
            Number::I64(i) => Some(i),
            Number::F64(f) if f.fract() == 0.0 && f >= i64::MIN as f64 && f <= i64::MAX as f64 => {
                Some(f as i64)
            }
            Number::F64(_) => None,
        }
    }
}

/// An insertion-ordered string-keyed map — the representation of JSON
/// objects. Lookups are linear scans; objects in this workspace are small
/// (config structs, figure rows), so ordered output matters more than
/// lookup complexity.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Map {
    entries: Vec<(String, Value)>,
}

impl Map {
    /// An empty object.
    pub fn new() -> Self {
        Map::default()
    }

    /// Insert `value` at `key`, replacing (in place) any existing entry.
    pub fn insert(&mut self, key: String, value: Value) -> Option<Value> {
        for (k, v) in &mut self.entries {
            if *k == key {
                return Some(std::mem::replace(v, value));
            }
        }
        self.entries.push((key, value));
        None
    }

    /// Member lookup.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.entries.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    /// True when `key` is present.
    pub fn contains_key(&self, key: &str) -> bool {
        self.get(key).is_some()
    }

    /// Number of members.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when the object has no members.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterate members in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (&String, &Value)> {
        self.entries.iter().map(|(k, v)| (k, v))
    }

    /// The single `(key, value)` entry, if the object has exactly one —
    /// how externally tagged enum variants are recognised.
    pub fn single_entry(&self) -> Option<(&str, &Value)> {
        match self.entries.as_slice() {
            [(k, v)] => Some((k.as_str(), v)),
            _ => None,
        }
    }
}

impl<'a> IntoIterator for &'a Map {
    type Item = (&'a String, &'a Value);
    type IntoIter = std::iter::Map<
        std::slice::Iter<'a, (String, Value)>,
        fn(&'a (String, Value)) -> (&'a String, &'a Value),
    >;
    fn into_iter(self) -> Self::IntoIter {
        self.entries.iter().map(|(k, v)| (k, v))
    }
}

/// Serialisation/deserialisation error.
#[derive(Debug, Clone)]
pub struct Error {
    msg: String,
}

impl Error {
    /// An error with a custom message.
    pub fn custom(msg: impl Into<String>) -> Self {
        Error { msg: msg.into() }
    }

    /// "expected X while deserialising Y".
    pub fn expected(what: &str, ctx: &str) -> Self {
        Error {
            msg: format!("expected {what} while deserialising {ctx}"),
        }
    }

    /// A required field was absent.
    pub fn missing_field(field: &str, ctx: &str) -> Self {
        Error {
            msg: format!("missing field `{field}` while deserialising {ctx}"),
        }
    }

    /// An enum tag did not match any variant.
    pub fn unknown_variant(tag: &str, ctx: &str) -> Self {
        Error {
            msg: format!("unknown variant `{tag}` for {ctx}"),
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}

impl From<Error> for std::io::Error {
    fn from(e: Error) -> Self {
        std::io::Error::new(std::io::ErrorKind::InvalidData, e)
    }
}

/// Types that can render themselves as a JSON [`Value`].
pub trait Serialize {
    /// Produce the JSON value for `self`.
    fn serialize(&self) -> Value;
}

/// Types that can be rebuilt from a JSON [`Value`].
pub trait Deserialize: Sized {
    /// Rebuild `Self` from a JSON value.
    fn deserialize(v: &Value) -> Result<Self, Error>;
}

// --- Serialize impls for std types ----------------------------------------

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize(&self) -> Value {
        (**self).serialize()
    }
}

impl Serialize for Value {
    fn serialize(&self) -> Value {
        self.clone()
    }
}

impl Serialize for bool {
    fn serialize(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Serialize for String {
    fn serialize(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Serialize for str {
    fn serialize(&self) -> Value {
        Value::String(self.to_string())
    }
}

macro_rules! ser_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize(&self) -> Value {
                Value::Number(Number::U64(*self as u64))
            }
        }
    )*};
}
ser_uint!(u8, u16, u32, u64, usize);

macro_rules! ser_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize(&self) -> Value {
                let v = *self as i64;
                if v >= 0 {
                    Value::Number(Number::U64(v as u64))
                } else {
                    Value::Number(Number::I64(v))
                }
            }
        }
    )*};
}
ser_int!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn serialize(&self) -> Value {
        Value::Number(Number::F64(*self))
    }
}

impl Serialize for f32 {
    fn serialize(&self) -> Value {
        Value::Number(Number::F64(f64::from(*self)))
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn serialize(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize).collect())
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize(&self) -> Value {
        match self {
            Some(x) => x.serialize(),
            None => Value::Null,
        }
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn serialize(&self) -> Value {
        Value::Array(vec![self.0.serialize(), self.1.serialize()])
    }
}

impl<A: Serialize, B: Serialize, C: Serialize> Serialize for (A, B, C) {
    fn serialize(&self) -> Value {
        Value::Array(vec![
            self.0.serialize(),
            self.1.serialize(),
            self.2.serialize(),
        ])
    }
}

impl Serialize for Map {
    fn serialize(&self) -> Value {
        Value::Object(self.clone())
    }
}

// --- Deserialize impls for std types --------------------------------------

impl Deserialize for Value {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}

impl Deserialize for bool {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        v.as_bool().ok_or_else(|| Error::expected("bool", "bool"))
    }
}

impl Deserialize for String {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        v.as_str()
            .map(str::to_string)
            .ok_or_else(|| Error::expected("string", "String"))
    }
}

macro_rules! de_uint {
    ($($t:ty),*) => {$(
        impl Deserialize for $t {
            fn deserialize(v: &Value) -> Result<Self, Error> {
                let u = v.as_u64().ok_or_else(|| Error::expected("unsigned integer", stringify!($t)))?;
                <$t>::try_from(u).map_err(|_| Error::expected("in-range integer", stringify!($t)))
            }
        }
    )*};
}
de_uint!(u8, u16, u32, u64, usize);

macro_rules! de_int {
    ($($t:ty),*) => {$(
        impl Deserialize for $t {
            fn deserialize(v: &Value) -> Result<Self, Error> {
                let i = v.as_i64().ok_or_else(|| Error::expected("integer", stringify!($t)))?;
                <$t>::try_from(i).map_err(|_| Error::expected("in-range integer", stringify!($t)))
            }
        }
    )*};
}
de_int!(i8, i16, i32, i64, isize);

impl Deserialize for f64 {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        if let Some(f) = v.as_f64() {
            return Ok(f);
        }
        // Non-finite floats round-trip as strings (JSON has no literal for
        // them; real serde_json degrades them to null, losing information).
        match v.as_str() {
            Some("inf") => Ok(f64::INFINITY),
            Some("-inf") => Ok(f64::NEG_INFINITY),
            Some("nan") => Ok(f64::NAN),
            _ => Err(Error::expected("number", "f64")),
        }
    }
}

impl Deserialize for f32 {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        f64::deserialize(v).map(|f| f as f32)
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        v.as_array()
            .ok_or_else(|| Error::expected("array", "Vec"))?
            .iter()
            .map(T::deserialize)
            .collect()
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        if v.is_null() {
            Ok(None)
        } else {
            T::deserialize(v).map(Some)
        }
    }
}

impl<A: Deserialize, B: Deserialize> Deserialize for (A, B) {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        let a = v
            .as_array()
            .ok_or_else(|| Error::expected("array", "tuple"))?;
        if a.len() != 2 {
            return Err(Error::expected("array of 2", "tuple"));
        }
        Ok((A::deserialize(&a[0])?, B::deserialize(&a[1])?))
    }
}

impl<A: Deserialize, B: Deserialize, C: Deserialize> Deserialize for (A, B, C) {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        let a = v
            .as_array()
            .ok_or_else(|| Error::expected("array", "tuple"))?;
        if a.len() != 3 {
            return Err(Error::expected("array of 3", "tuple"));
        }
        Ok((
            A::deserialize(&a[0])?,
            B::deserialize(&a[1])?,
            C::deserialize(&a[2])?,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_preserves_insertion_order_and_replaces() {
        let mut m = Map::new();
        m.insert("b".into(), Value::Bool(true));
        m.insert("a".into(), Value::Null);
        m.insert("b".into(), Value::Bool(false));
        let keys: Vec<&str> = m.iter().map(|(k, _)| k.as_str()).collect();
        assert_eq!(keys, ["b", "a"]);
        assert_eq!(m.get("b"), Some(&Value::Bool(false)));
        assert_eq!(m.len(), 2);
    }

    #[test]
    fn number_conversions() {
        assert_eq!(Number::U64(7).as_i64(), Some(7));
        assert_eq!(Number::I64(-7).as_u64(), None);
        assert_eq!(Number::F64(3.0).as_u64(), Some(3));
        assert_eq!(Number::F64(3.5).as_u64(), None);
    }

    #[test]
    fn option_and_tuple_round_trip() {
        let v = Serialize::serialize(&(1u64, -2i64));
        let back: (u64, i64) = Deserialize::deserialize(&v).unwrap();
        assert_eq!(back, (1, -2));
        let none: Option<u64> = Deserialize::deserialize(&Value::Null).unwrap();
        assert_eq!(none, None);
    }
}
