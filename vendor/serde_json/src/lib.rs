//! Offline stand-in for `serde_json`.
//!
//! The vendored `serde` shim already defines the data model ([`Value`],
//! [`Map`], [`Number`], [`Error`]); this crate adds the JSON *text* format
//! on top: a writer (compact and pretty), a recursive-descent parser, the
//! `to_*`/`from_str` entry points and the [`json!`] macro, covering exactly
//! the API surface this workspace uses.
//!
//! One deliberate divergence from real serde_json: non-finite floats are
//! written as the strings `"inf"` / `"-inf"` / `"nan"` (and parsed back by
//! the shim's `f64::deserialize`) instead of degrading to `null`.

use std::fmt::Write as _;
use std::io;

pub use serde::{Error, Map, Number, Value};

/// Result alias matching real serde_json's.
pub type Result<T> = std::result::Result<T, Error>;

/// Convert any serialisable value into a [`Value`] tree.
pub fn to_value<T: serde::Serialize>(value: T) -> Result<Value> {
    Ok(value.serialize())
}

/// Rebuild a deserialisable value from a [`Value`] tree.
pub fn from_value<T: serde::Deserialize>(value: &Value) -> Result<T> {
    T::deserialize(value)
}

/// Serialise to a compact JSON string.
pub fn to_string<T: serde::Serialize>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.serialize(), None, 0);
    Ok(out)
}

/// Serialise to a human-readable JSON string (two-space indent).
pub fn to_string_pretty<T: serde::Serialize>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.serialize(), Some(2), 0);
    Ok(out)
}

/// Serialise compactly into an [`io::Write`] sink.
pub fn to_writer<W: io::Write, T: serde::Serialize>(mut writer: W, value: &T) -> Result<()> {
    let s = to_string(value)?;
    writer
        .write_all(s.as_bytes())
        .map_err(|e| Error::custom(format!("write failed: {e}")))
}

/// Parse a JSON document into any deserialisable value.
pub fn from_str<T: serde::Deserialize>(s: &str) -> Result<T> {
    let value = parse_value(s)?;
    T::deserialize(&value)
}

/// Build a [`Value`] inline. Supports flat `{"key": expr, ...}` objects,
/// `[expr, ...]` arrays, `null`, and any serialisable expression.
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ({ $($key:literal : $value:expr),* $(,)? }) => {{
        #[allow(unused_mut)]
        let mut m = $crate::Map::new();
        $(
            m.insert(
                ::std::string::String::from($key),
                $crate::to_value(&$value).expect("json! value"),
            );
        )*
        $crate::Value::Object(m)
    }};
    ([ $($value:expr),* $(,)? ]) => {
        $crate::Value::Array(vec![
            $( $crate::to_value(&$value).expect("json! value") ),*
        ])
    };
    ($other:expr) => { $crate::to_value(&$other).expect("json! value") };
}

// --- Writer ----------------------------------------------------------------

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Number(n) => write_number(out, *n),
        Value::String(s) => write_string(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Value::Object(map) => {
            if map.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, val)) in map.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_string(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, val, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..(width * depth) {
            out.push(' ');
        }
    }
}

fn write_number(out: &mut String, n: Number) {
    match n {
        Number::U64(u) => {
            let _ = write!(out, "{u}");
        }
        Number::I64(i) => {
            let _ = write!(out, "{i}");
        }
        Number::F64(f) if f.is_nan() => out.push_str("\"nan\""),
        Number::F64(f) if f == f64::INFINITY => out.push_str("\"inf\""),
        Number::F64(f) if f == f64::NEG_INFINITY => out.push_str("\"-inf\""),
        Number::F64(f) => {
            // `{}` on f64 prints the shortest representation that parses
            // back exactly; whole floats re-read as integer Numbers, which
            // `f64::deserialize` accepts.
            let _ = write!(out, "{f}");
        }
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// --- Parser ----------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

/// Parse a complete JSON document (rejecting trailing garbage).
fn parse_value(s: &str) -> Result<Value> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::custom(format!(
            "trailing characters at byte {}",
            p.pos
        )));
    }
    Ok(v)
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8) -> Result<()> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::custom(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_keyword(&mut self, kw: &str, v: Value) -> Result<Value> {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            Ok(v)
        } else {
            Err(Error::custom(format!("invalid token at byte {}", self.pos)))
        }
    }

    fn value(&mut self) -> Result<Value> {
        self.skip_ws();
        match self.peek() {
            None => Err(Error::custom("unexpected end of input")),
            Some(b'n') => self.eat_keyword("null", Value::Null),
            Some(b't') => self.eat_keyword("true", Value::Bool(true)),
            Some(b'f') => self.eat_keyword("false", Value::Bool(false)),
            Some(b'"') => self.string().map(Value::String),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(c) => Err(Error::custom(format!(
                "unexpected character `{}` at byte {}",
                c as char, self.pos
            ))),
        }
    }

    fn array(&mut self) -> Result<Value> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(Error::custom(format!("bad array at byte {}", self.pos))),
            }
        }
    }

    fn object(&mut self) -> Result<Value> {
        self.eat(b'{')?;
        let mut map = Map::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            map.insert(key, self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(map));
                }
                _ => return Err(Error::custom(format!("bad object at byte {}", self.pos))),
            }
        }
    }

    fn string(&mut self) -> Result<String> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(Error::custom("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| Error::custom("truncated \\u escape"))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| Error::custom("bad \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| Error::custom("bad \\u escape"))?;
                            // Surrogate pairs are not produced by this
                            // workspace's writer; reject rather than mangle.
                            let c = char::from_u32(code)
                                .ok_or_else(|| Error::custom("\\u escape outside BMP"))?;
                            out.push(c);
                            self.pos += 4;
                        }
                        _ => return Err(Error::custom("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Advance one full UTF-8 character.
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest)
                        .map_err(|_| Error::custom("invalid UTF-8 in string"))?;
                    let c = s.chars().next().expect("non-empty by peek");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::custom("invalid number"))?;
        let n = if !is_float {
            if let Ok(u) = text.parse::<u64>() {
                Number::U64(u)
            } else if let Ok(i) = text.parse::<i64>() {
                Number::I64(i)
            } else {
                Number::F64(
                    text.parse::<f64>()
                        .map_err(|_| Error::custom(format!("bad number `{text}`")))?,
                )
            }
        } else {
            Number::F64(
                text.parse::<f64>()
                    .map_err(|_| Error::custom(format!("bad number `{text}`")))?,
            )
        };
        Ok(Value::Number(n))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde::Serialize;

    #[test]
    fn round_trip_scalars() {
        for src in ["null", "true", "false", "0", "-7", "3.5", "\"hi\""] {
            let v = parse_value(src).unwrap();
            assert_eq!(to_string(&v).unwrap(), src);
        }
    }

    #[test]
    fn round_trip_structures() {
        let src = r#"{"a":[1,2,{"b":null}],"c":"x\ny"}"#;
        let v = parse_value(src).unwrap();
        assert_eq!(to_string(&v).unwrap(), src);
    }

    #[test]
    fn pretty_is_reparsable() {
        let v = json!({"k": [1, 2, 3], "s": "v"});
        let pretty = to_string_pretty(&v).unwrap();
        assert!(pretty.contains('\n'));
        let back: Value = from_str(&pretty).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn json_macro_shapes() {
        assert_eq!(json!(null), Value::Null);
        assert_eq!(json!("7"), Value::String("7".into()));
        let obj = json!({"a": 1u64, "b": 2.5});
        assert_eq!(obj["a"].as_u64(), Some(1));
        assert_eq!(obj["b"].as_f64(), Some(2.5));
        let arr = json!([1u64, 2u64]);
        assert_eq!(arr[1].as_u64(), Some(2));
    }

    #[test]
    fn non_finite_floats_round_trip() {
        let v = (f64::INFINITY).serialize();
        let s = to_string(&v).unwrap();
        assert_eq!(s, "\"inf\"");
        let back: f64 = from_str(&s).unwrap();
        assert_eq!(back, f64::INFINITY);
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse_value("{").is_err());
        assert!(parse_value("1 2").is_err());
        assert!(parse_value("[1,]").is_err());
    }
}
