//! Offline stand-in for `proptest`.
//!
//! Implements the subset of proptest this workspace's property tests use:
//! the [`proptest!`] and [`prop_compose!`] macros, `prop_assert!` /
//! `prop_assert_eq!`, integer-range and tuple strategies, `any::<bool>()`,
//! and `prop::collection::vec`. Inputs are generated from a deterministic
//! per-case PRNG (no `std::time`/entropy), so failures reproduce exactly:
//! the panic message names the test and case index.
//!
//! Differences from real proptest, accepted for offline builds: no
//! shrinking (failures report the case seed, not a minimal input) and no
//! persistence files.

use std::ops::{Range, RangeInclusive};

/// Random source for strategies: SplitMix64, seeded per test case.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// A generator for one `(test, case)` pair.
    pub fn new(seed: u64) -> Self {
        TestRng {
            state: seed ^ 0x9E37_79B9_7F4A_7C15,
        }
    }

    /// Next raw 64-bit draw.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw in `[0, n)`; `n` must be positive.
    pub fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        // Multiply-shift reduction; the tiny modulo bias is irrelevant for
        // test-input generation.
        ((self.next_u64() as u128 * n as u128) >> 64) as u64
    }
}

/// Something that can generate values of its associated type.
///
/// Strategies are passed by reference and may be sampled many times; unlike
/// real proptest there is no value tree (no shrinking).
pub trait Strategy {
    /// The type of generated values.
    type Value;
    /// Draw one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start + rng.below(span) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as u64) - (lo as u64);
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + rng.below(span + 1) as $t
            }
        }
    )*};
}
int_range_strategy!(u8, u16, u32, u64, usize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        self.start + unit * (self.end - self.start)
    }
}

/// Strategy producing uniformly random values of `T` (only the shapes the
/// workspace asks for).
pub struct Any<T>(std::marker::PhantomData<T>);

/// `any::<T>()` — the proptest entry point for type-driven strategies.
pub fn any<T>() -> Any<T> {
    Any(std::marker::PhantomData)
}

impl Strategy for Any<bool> {
    type Value = bool;
    fn generate(&self, rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! any_int {
    ($($t:ty),*) => {$(
        impl Strategy for Any<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
any_int!(u8, u16, u32, u64, usize);

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}
tuple_strategy!(A);
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);
tuple_strategy!(A, B, C, D, E);

/// A strategy defined by a generation closure — what [`prop_compose!`]
/// returns.
pub struct FnStrategy<T, F: Fn(&mut TestRng) -> T>(pub F);

impl<T, F: Fn(&mut TestRng) -> T> Strategy for FnStrategy<T, F> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (self.0)(rng)
    }
}

/// Always produces a clone of the given value.
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

pub mod collection {
    //! Collection strategies (`prop::collection::vec`).

    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Strategy for a `Vec` whose length is drawn from `len` and whose
    /// elements come from `element`.
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    /// `prop::collection::vec(element, len_range)`.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.len.generate(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod test_runner {
    //! Runner configuration (`ProptestConfig`).

    /// How many cases each property runs.
    #[derive(Debug, Clone)]
    pub struct Config {
        /// Number of generated cases per property.
        pub cases: u32,
    }

    impl Config {
        /// A config running `cases` cases.
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            // Real proptest defaults to 256; keep the same coverage.
            Config { cases: 256 }
        }
    }
}

/// The `prop::` paths tests reach through the prelude.
pub mod prop {
    pub use crate::collection;
}

pub mod prelude {
    //! Everything a property-test file imports with `use proptest::prelude::*`.
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{
        any, prop, prop_assert, prop_assert_eq, prop_assert_ne, prop_compose, proptest, Just,
        Strategy,
    };
}

/// Outcome of one property case body.
pub type CaseResult = Result<(), String>;

#[doc(hidden)]
pub fn run_cases(test_name: &str, cases: u32, mut case: impl FnMut(&mut TestRng) -> CaseResult) {
    // Seed differs per test so unrelated properties explore different
    // inputs, but is stable across runs for reproducibility.
    let base = test_name.bytes().fold(0xcbf2_9ce4_8422_2325u64, |h, b| {
        (h ^ b as u64).wrapping_mul(0x1000_0000_01b3)
    });
    for i in 0..cases {
        let mut rng = TestRng::new(base.wrapping_add(i as u64));
        if let Err(msg) = case(&mut rng) {
            panic!("property `{test_name}` failed at case {i}/{cases}: {msg}");
        }
    }
}

/// Assert inside a property body; failure reports the case, not a panic
/// without context.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::core::result::Result::Err(format!(
                "assertion failed: {} ({}:{})", stringify!($cond), file!(), line!()
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err(format!(
                "assertion failed: {} — {} ({}:{})",
                stringify!($cond), format!($($fmt)+), file!(), line!()
            ));
        }
    };
}

/// Equality assertion inside a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (lhs, rhs) = (&$a, &$b);
        if !(lhs == rhs) {
            return ::core::result::Result::Err(format!(
                "assertion failed: {} == {}: {:?} != {:?} ({}:{})",
                stringify!($a), stringify!($b), lhs, rhs, file!(), line!()
            ));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (lhs, rhs) = (&$a, &$b);
        if !(lhs == rhs) {
            return ::core::result::Result::Err(format!(
                "assertion failed: {} == {}: {:?} != {:?} — {} ({}:{})",
                stringify!($a), stringify!($b), lhs, rhs, format!($($fmt)+), file!(), line!()
            ));
        }
    }};
}

/// Inequality assertion inside a property body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {{
        let (lhs, rhs) = (&$a, &$b);
        if lhs == rhs {
            return ::core::result::Result::Err(format!(
                "assertion failed: {} != {}: both {:?} ({}:{})",
                stringify!($a),
                stringify!($b),
                lhs,
                file!(),
                line!()
            ));
        }
    }};
}

/// Define property tests. Mirrors proptest's surface: an optional
/// `#![proptest_config(...)]` header, then `#[test]` functions whose
/// arguments are `pattern in strategy` bindings.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@with_cfg ($cfg) $($rest)*);
    };
    (@with_cfg ($cfg:expr)
        $($(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block)*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::Config = $cfg;
                $crate::run_cases(stringify!($name), config.cases, |__rng| {
                    $(let $pat = $crate::Strategy::generate(&($strat), __rng);)+
                    $body
                    ::core::result::Result::Ok(())
                });
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@with_cfg ($crate::test_runner::Config::default()) $($rest)*);
    };
}

/// Define a named composite strategy: `fn name()(bindings...) -> T { map }`.
#[macro_export]
macro_rules! prop_compose {
    ($(#[$meta:meta])* $vis:vis fn $name:ident($($arg:ident: $argty:ty),* $(,)?)
        ($($pat:pat in $strat:expr),+ $(,)?) -> $ret:ty $body:block
    ) => {
        $(#[$meta])*
        $vis fn $name($($arg: $argty),*) -> impl $crate::Strategy<Value = $ret> {
            $crate::FnStrategy(move |__rng: &mut $crate::TestRng| {
                $(let $pat = $crate::Strategy::generate(&($strat), __rng);)+
                $body
            })
        }
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = TestRng::new(1);
        for _ in 0..1000 {
            let v = (10u64..20).generate(&mut rng);
            assert!((10..20).contains(&v));
            let w = (0u32..=5).generate(&mut rng);
            assert!(w <= 5);
        }
    }

    #[test]
    fn vec_strategy_lengths() {
        let mut rng = TestRng::new(2);
        let s = collection::vec(0u64..10, 1..4);
        for _ in 0..100 {
            let v = s.generate(&mut rng);
            assert!((1..4).contains(&v.len()));
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let s = (0u64..1000, any::<bool>());
        let a: Vec<_> = {
            let mut rng = TestRng::new(7);
            (0..10).map(|_| s.generate(&mut rng)).collect()
        };
        let b: Vec<_> = {
            let mut rng = TestRng::new(7);
            (0..10).map(|_| s.generate(&mut rng)).collect()
        };
        assert_eq!(a, b);
    }

    prop_compose! {
        fn pair()(a in 0u64..5, b in 5u64..10) -> (u64, u64) {
            (a, b)
        }
    }

    proptest! {
        #[test]
        fn composed_pairs_ordered((a, b) in pair()) {
            prop_assert!(a < b, "a={} b={}", a, b);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]
        #[test]
        fn config_header_accepted(x in 0u64..100) {
            prop_assert!(x < 100);
            prop_assert_eq!(x, x);
            prop_assert_ne!(x, x + 1);
        }
    }

    #[test]
    #[should_panic(expected = "failed at case")]
    fn failing_property_reports_case() {
        run_cases("demo", 8, |rng| {
            let v = (0u64..10).generate(rng);
            if v >= 5 {
                return Err(format!("v={v}"));
            }
            Ok(())
        });
    }
}
