//! Offline stand-in for `serde_derive`.
//!
//! The real serde data model (Serializer/Deserializer visitors) is far more
//! than this workspace needs: every serialisation in the repo goes through
//! `serde_json`. The vendored `serde` shim therefore defines `Serialize` /
//! `Deserialize` directly in terms of a JSON `Value`, and this crate derives
//! those traits with a hand-rolled token parser (no `syn`/`quote`, so the
//! workspace builds with zero network access).
//!
//! Supported shapes — exactly what the workspace uses:
//!
//! * structs with named fields (`#[serde(default)]` on fields honoured);
//! * tuple structs (single-field ones serialise transparently, matching
//!   both serde's newtype behaviour and `#[serde(transparent)]`);
//! * enums with unit and newtype variants (externally tagged, like serde).
//!
//! Anything else (generics, struct variants, unsupported `#[serde(...)]`
//! options) fails the build with a clear message rather than silently
//! producing wrong code.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Derive the vendored `serde::Serialize` trait.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    render(gen_serialize(&item))
}

/// Derive the vendored `serde::Deserialize` trait.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    render(gen_deserialize(&item))
}

fn render(code: String) -> TokenStream {
    code.parse()
        .unwrap_or_else(|e| panic!("serde_derive generated invalid code: {e}\n{code}"))
}

// ---------------------------------------------------------------------------
// A tiny item parser over proc_macro tokens.
// ---------------------------------------------------------------------------

struct Field {
    name: String,
    default: bool,
}

enum Variant {
    Unit(String),
    /// Variant name and tuple arity.
    Tuple(String, usize),
}

enum Shape {
    Named(Vec<Field>),
    Tuple(usize),
    Enum(Vec<Variant>),
}

struct Item {
    name: String,
    shape: Shape,
}

/// Attribute flags gathered while skipping `#[...]` tokens.
#[derive(Default)]
struct Attrs {
    transparent: bool,
    default: bool,
}

/// Consume one `#[...]` attribute (the leading `#` was already seen),
/// recording any `serde(...)` options we understand.
fn eat_attribute(
    iter: &mut std::iter::Peekable<proc_macro::token_stream::IntoIter>,
    attrs: &mut Attrs,
) {
    let Some(TokenTree::Group(g)) = iter.next() else {
        panic!("serde_derive: malformed attribute");
    };
    let mut inner = g.stream().into_iter();
    let Some(TokenTree::Ident(head)) = inner.next() else {
        return;
    };
    if head.to_string() != "serde" {
        return; // #[doc], #[non_exhaustive], ... — ignore.
    }
    let Some(TokenTree::Group(args)) = inner.next() else {
        return;
    };
    for tok in args.stream() {
        if let TokenTree::Ident(opt) = tok {
            match opt.to_string().as_str() {
                "transparent" => attrs.transparent = true,
                "default" => attrs.default = true,
                other => panic!("serde_derive: unsupported serde option `{other}`"),
            }
        }
    }
}

fn parse_item(input: TokenStream) -> Item {
    let mut iter = input.into_iter().peekable();
    let mut attrs = Attrs::default();
    // Attributes and visibility before the struct/enum keyword.
    let kind = loop {
        match iter.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => eat_attribute(&mut iter, &mut attrs),
            Some(TokenTree::Ident(id)) => {
                let s = id.to_string();
                match s.as_str() {
                    "pub" => {
                        // Skip a following (crate)/(super)/(in ...) group.
                        if let Some(TokenTree::Group(g)) = iter.peek() {
                            if g.delimiter() == Delimiter::Parenthesis {
                                iter.next();
                            }
                        }
                    }
                    "struct" | "enum" => break s,
                    other => panic!("serde_derive: unexpected token `{other}` before item"),
                }
            }
            other => panic!("serde_derive: unexpected input {other:?}"),
        }
    };
    let Some(TokenTree::Ident(name)) = iter.next() else {
        panic!("serde_derive: expected item name");
    };
    let name = name.to_string();
    if let Some(TokenTree::Punct(p)) = iter.peek() {
        if p.as_char() == '<' {
            panic!("serde_derive: generic type `{name}` is not supported by the offline shim");
        }
    }
    let Some(TokenTree::Group(body)) = iter.next() else {
        panic!("serde_derive: `{name}` has no body (unit structs are not serialised anywhere in this workspace)");
    };

    let shape = if kind == "struct" {
        match body.delimiter() {
            Delimiter::Brace => Shape::Named(parse_named_fields(body.stream())),
            Delimiter::Parenthesis => {
                let arity = count_tuple_fields(body.stream());
                if attrs.transparent && arity != 1 {
                    panic!("serde_derive: #[serde(transparent)] needs exactly one field");
                }
                Shape::Tuple(arity)
            }
            _ => panic!("serde_derive: unexpected struct body"),
        }
    } else {
        Shape::Enum(parse_variants(body.stream()))
    };
    Item { name, shape }
}

/// Parse `name: Type, ...` fields, skipping attributes, visibility and the
/// type tokens (angle-bracket depth tracked so `Vec<(A, B)>` commas do not
/// split fields).
fn parse_named_fields(stream: TokenStream) -> Vec<Field> {
    let mut fields = Vec::new();
    let mut iter = stream.into_iter().peekable();
    loop {
        let mut attrs = Attrs::default();
        // Field attributes + visibility.
        let name = loop {
            match iter.next() {
                None => return fields,
                Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                    eat_attribute(&mut iter, &mut attrs)
                }
                Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                    if let Some(TokenTree::Group(g)) = iter.peek() {
                        if g.delimiter() == Delimiter::Parenthesis {
                            iter.next();
                        }
                    }
                }
                Some(TokenTree::Ident(id)) => break id.to_string(),
                Some(other) => panic!("serde_derive: unexpected field token {other}"),
            }
        };
        match iter.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => panic!("serde_derive: expected `:` after field `{name}`, got {other:?}"),
        }
        // Skip the type up to a top-level comma.
        let mut angle = 0i32;
        for tok in iter.by_ref() {
            match tok {
                TokenTree::Punct(p) if p.as_char() == '<' => angle += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => angle -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && angle == 0 => break,
                _ => {}
            }
        }
        fields.push(Field {
            name,
            default: attrs.default,
        });
    }
}

/// Count the fields of a tuple struct / tuple variant body.
fn count_tuple_fields(stream: TokenStream) -> usize {
    let mut count = 0usize;
    let mut angle = 0i32;
    let mut pending = false;
    for tok in stream {
        match tok {
            TokenTree::Punct(p) if p.as_char() == '<' => angle += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle == 0 => {
                count += 1;
                pending = false;
                continue;
            }
            _ => {}
        }
        pending = true;
    }
    count + usize::from(pending)
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let mut variants = Vec::new();
    let mut iter = stream.into_iter().peekable();
    loop {
        let mut attrs = Attrs::default();
        let name = loop {
            match iter.next() {
                None => return variants,
                Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                    eat_attribute(&mut iter, &mut attrs)
                }
                Some(TokenTree::Ident(id)) => break id.to_string(),
                Some(other) => panic!("serde_derive: unexpected variant token {other}"),
            }
        };
        match iter.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let arity = count_tuple_fields(g.stream());
                iter.next();
                variants.push(Variant::Tuple(name, arity));
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                panic!(
                    "serde_derive: struct variant `{name}` is not supported by the offline shim"
                );
            }
            _ => variants.push(Variant::Unit(name)),
        }
        // Skip to (and over) the separating comma, rejecting discriminants.
        for tok in iter.by_ref() {
            match tok {
                TokenTree::Punct(p) if p.as_char() == ',' => break,
                TokenTree::Punct(p) if p.as_char() == '=' => {
                    panic!("serde_derive: explicit discriminants are not supported")
                }
                _ => {}
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Code generation (plain strings, parsed back into a TokenStream).
// ---------------------------------------------------------------------------

fn gen_serialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.shape {
        Shape::Named(fields) => {
            let mut s = String::from("let mut m = ::serde::Map::new();\n");
            for f in fields {
                s.push_str(&format!(
                    "m.insert(::std::string::String::from(\"{0}\"), ::serde::Serialize::serialize(&self.{0}));\n",
                    f.name
                ));
            }
            s.push_str("::serde::Value::Object(m)");
            s
        }
        Shape::Tuple(1) => "::serde::Serialize::serialize(&self.0)".to_string(),
        Shape::Tuple(n) => {
            let elems: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Serialize::serialize(&self.{i})"))
                .collect();
            format!("::serde::Value::Array(vec![{}])", elems.join(", "))
        }
        Shape::Enum(variants) => {
            let mut arms = String::new();
            for v in variants {
                match v {
                    Variant::Unit(vn) => arms.push_str(&format!(
                        "{name}::{vn} => ::serde::Value::String(::std::string::String::from(\"{vn}\")),\n"
                    )),
                    Variant::Tuple(vn, arity) => {
                        let binds: Vec<String> = (0..*arity).map(|i| format!("x{i}")).collect();
                        let inner = if *arity == 1 {
                            "::serde::Serialize::serialize(x0)".to_string()
                        } else {
                            let elems: Vec<String> = binds
                                .iter()
                                .map(|b| format!("::serde::Serialize::serialize({b})"))
                                .collect();
                            format!("::serde::Value::Array(vec![{}])", elems.join(", "))
                        };
                        arms.push_str(&format!(
                            "{name}::{vn}({binds}) => {{\n\
                             let mut m = ::serde::Map::new();\n\
                             m.insert(::std::string::String::from(\"{vn}\"), {inner});\n\
                             ::serde::Value::Object(m)\n}}\n",
                            binds = binds.join(", "),
                        ));
                    }
                }
            }
            format!("match self {{\n{arms}}}")
        }
    };
    format!(
        "#[automatically_derived]\n\
         impl ::serde::Serialize for {name} {{\n\
             fn serialize(&self) -> ::serde::Value {{\n{body}\n}}\n\
         }}"
    )
}

fn gen_deserialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.shape {
        Shape::Named(fields) => {
            let mut s = format!(
                "let m = v.as_object().ok_or_else(|| ::serde::Error::expected(\"object\", \"{name}\"))?;\n\
                 ::core::result::Result::Ok({name} {{\n"
            );
            for f in fields {
                let missing = if f.default {
                    "::core::default::Default::default()".to_string()
                } else {
                    format!(
                        "return ::core::result::Result::Err(::serde::Error::missing_field(\"{}\", \"{name}\"))",
                        f.name
                    )
                };
                s.push_str(&format!(
                    "{0}: match m.get(\"{0}\") {{\n\
                     ::core::option::Option::Some(x) => ::serde::Deserialize::deserialize(x)?,\n\
                     ::core::option::Option::None => {missing},\n}},\n",
                    f.name
                ));
            }
            s.push_str("})");
            s
        }
        Shape::Tuple(1) => {
            format!("::core::result::Result::Ok({name}(::serde::Deserialize::deserialize(v)?))")
        }
        Shape::Tuple(n) => {
            let mut s = format!(
                "let a = v.as_array().ok_or_else(|| ::serde::Error::expected(\"array\", \"{name}\"))?;\n\
                 if a.len() != {n} {{ return ::core::result::Result::Err(::serde::Error::expected(\"array of {n}\", \"{name}\")); }}\n\
                 ::core::result::Result::Ok({name}("
            );
            for i in 0..*n {
                s.push_str(&format!("::serde::Deserialize::deserialize(&a[{i}])?, "));
            }
            s.push_str("))");
            s
        }
        Shape::Enum(variants) => {
            let mut unit_arms = String::new();
            let mut tagged_arms = String::new();
            for v in variants {
                match v {
                    Variant::Unit(vn) => unit_arms.push_str(&format!(
                        "\"{vn}\" => return ::core::result::Result::Ok({name}::{vn}),\n"
                    )),
                    Variant::Tuple(vn, arity) => {
                        let build = if *arity == 1 {
                            format!("{name}::{vn}(::serde::Deserialize::deserialize(val)?)")
                        } else {
                            let mut b = format!(
                                "{{ let a = val.as_array().ok_or_else(|| ::serde::Error::expected(\"array\", \"{name}::{vn}\"))?;\n\
                                 if a.len() != {arity} {{ return ::core::result::Result::Err(::serde::Error::expected(\"array of {arity}\", \"{name}::{vn}\")); }}\n\
                                 {name}::{vn}("
                            );
                            for i in 0..*arity {
                                b.push_str(&format!(
                                    "::serde::Deserialize::deserialize(&a[{i}])?, "
                                ));
                            }
                            b.push_str(") }");
                            b
                        };
                        tagged_arms.push_str(&format!(
                            "\"{vn}\" => return ::core::result::Result::Ok({build}),\n"
                        ));
                    }
                }
            }
            let val_bind = if tagged_arms.is_empty() { "_" } else { "val" };
            format!(
                "if let ::core::option::Option::Some(s) = v.as_str() {{\n\
                     match s {{\n{unit_arms}\
                     _ => return ::core::result::Result::Err(::serde::Error::unknown_variant(s, \"{name}\")),\n}}\n\
                 }}\n\
                 if let ::core::option::Option::Some(m) = v.as_object() {{\n\
                     if let ::core::option::Option::Some((tag, {val_bind})) = m.single_entry() {{\n\
                         match tag {{\n{tagged_arms}\
                         _ => return ::core::result::Result::Err(::serde::Error::unknown_variant(tag, \"{name}\")),\n}}\n\
                     }}\n\
                 }}\n\
                 ::core::result::Result::Err(::serde::Error::expected(\"enum {name}\", \"{name}\"))"
            )
        }
    };
    format!(
        "#[automatically_derived]\n\
         impl ::serde::Deserialize for {name} {{\n\
             fn deserialize(v: &::serde::Value) -> ::core::result::Result<Self, ::serde::Error> {{\n{body}\n}}\n\
         }}"
    )
}
